.PHONY: all test bench shardcheck tracecheck memocheck cubeops servicecheck bench-service aigcheck bench-aig dccheck kcheck ci doc clean

all:
	dune build @all

test:
	dune runtest

# Region-scheduler soundness gate: every quick (circuit, method) cell
# must be byte-identical across jobs in {1, 2, 8} with the division
# memo on and off, and the per-method literal totals must match the
# pinned quick-suite figures (245/241/239/235).
shardcheck:
	dune exec bench/main.exe -- shardcheck quick

# Degraded-run robustness gate: rerun the quick rows with a tiny fault
# budget and a trace file, then lint every trace line as JSON and check
# the degraded results are still equivalent.
tracecheck:
	dune exec bench/main.exe -- tracecheck quick

# Division-memo soundness gate: every quick (circuit, method) cell must
# be byte-identical with the memo on and off, with memo_hits > 0
# overall when on and the memo counters untouched when off.
memocheck:
	dune exec bench/main.exe -- memocheck quick

# Packed cube kernel vs the seed's list cubes: containment and
# intersection throughput on synthetic multi-word covers.
cubeops:
	dune exec bench/main.exe -- cubeops

# Resident-service gate: start an in-process rarsubd, run a scripted
# miss/hit/bypass sequence over the quick cells, assert every response
# is byte-identical to the cold reference run, the cache counters are
# exact, and malformed/oversized frames are refused without downing the
# daemon.
servicecheck:
	dune exec bench/main.exe -- servicecheck quick

# Throughput/latency snapshot for the resident service: one cold pass,
# then 8 concurrent clients replaying the workload warm. Writes
# BENCH_service.json (committed); fails if warm repeats are not at
# least 5x faster than cold.
bench-service:
	dune exec bench/main.exe -- service quick

# AIG backend gate: AIGER write/parse fixpoint, parse = compact, and
# index-list round trips on the bundled .aag fixtures, then windowed
# resubstitution at jobs in {1, 4} asserting byte-identical output,
# a never-increasing gate count, and simulation equivalence through
# the Network bridge.
aigcheck:
	dune exec bench/main.exe -- aigcheck

# External don't-care discipline gate: every quick (circuit, method)
# cell run with an explicitly attached empty DC view must be
# byte-identical to the DC-less reference across the jobs-x-memo grid
# (pinned totals 245/241/239/235), DC runs on the bundled DC-rich
# fixture must be deterministic across the same grid, and each Boolean
# method must beat its literal-improvement floor on that fixture while
# verifying equivalent modulo the view.
dccheck:
	dune exec bench/main.exe -- dccheck quick

# Constructive k-resubstitution gate: every quick (circuit, method)
# cell is verified with the BDD oracle (exact, not sampled), the four
# existing methods stay pinned to the shardcheck totals, resub-k's
# total meets the ext floor (<= 239) and is byte-identical across the
# jobs {1,2,8} x memo {on,off} grid, and its candidate-construction
# CPU stays below ext's division CPU.
kcheck:
	dune exec bench/main.exe -- kcheck quick

# Windowed-resub snapshot at real-benchmark scale: three generated
# circuits of 12k-24k gates, gates/literals before and after plus wall
# seconds. Writes BENCH_aig.json (committed).
bench-aig:
	dune exec bench/main.exe -- aig

# Full local CI: build, tests, the jobs=1 vs jobs=max determinism gate
# (literal totals must be identical), the shardcheck jobs-x-memo grid
# gate (pinned quick totals), the degraded-run/trace gate, the
# memo bit-identity gate, the cube-kernel microbenchmark, the resident-
# service miss/hit byte-identity gate, the AIG backend round-trip and
# windowed-resub determinism gate, the external don't-care discipline
# gate, the constructive k-resub gate, and the quick
# machine-readable perf snapshot (writes BENCH_resub.json for cross-PR
# trajectory tracking; fails if total cpu_seconds — including the
# multi-pass script benchmark — regresses >20% vs the previous snapshot
# at jobs=1).
ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- jobscheck quick
	dune exec bench/main.exe -- shardcheck quick
	dune exec bench/main.exe -- tracecheck quick
	dune exec bench/main.exe -- memocheck quick
	dune exec bench/main.exe -- cubeops
	dune exec bench/main.exe -- servicecheck quick
	dune exec bench/main.exe -- aigcheck
	dune exec bench/main.exe -- dccheck quick
	dune exec bench/main.exe -- kcheck quick
	dune exec bench/main.exe -- bench quick

bench:
	dune exec bench/main.exe

doc:
	dune build @doc

clean:
	dune clean
