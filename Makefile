.PHONY: all test bench doc clean

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

doc:
	dune build @doc

clean:
	dune clean
