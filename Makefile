.PHONY: all test bench ci doc clean

all:
	dune build @all

test:
	dune runtest

# Full local CI: build, tests, and the quick machine-readable perf
# snapshot (writes BENCH_resub.json for cross-PR trajectory tracking).
ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- bench quick

bench:
	dune exec bench/main.exe

doc:
	dune build @doc

clean:
	dune clean
