(* rarsubd: the resident synthesis daemon.

   Listens on a Unix-domain socket for framed jobs (BLIF in, script +
   flags, BLIF out), keeps a content-addressed result cache and warm
   per-worker network snapshots alive across jobs, and drains in-flight
   work on SIGTERM/SIGINT. Submit jobs with `rarsub client`. *)

open Cmdliner

let run socket jobs no_cache cache_entries cache_bytes max_frame deadline
    trace_file =
  match
    match trace_file with
    | Some path -> Rar_util.Trace.to_file path
    | None -> Rar_util.Trace.disabled
  with
  | exception Sys_error msg ->
    prerr_endline msg;
    2
  | trace ->
    Fun.protect ~finally:(fun () -> Rar_util.Trace.close trace)
    @@ fun () ->
    let cache =
      if no_cache then None
      else
        Some
          { Rar_service.Cache.max_entries = cache_entries;
            max_bytes = cache_bytes }
    in
    let config =
      {
        Rar_service.Server.socket_path = socket;
        jobs;
        cache;
        max_frame;
        default_deadline = deadline;
        trace;
      }
    in
    (match Rar_service.Server.create config with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "rarsubd: %s: %s\n" socket (Unix.error_message err);
      2
    | server ->
      Rar_service.Server.install_signal_handlers server;
      Printf.eprintf "rarsubd: listening on %s (%s workers, cache %s)\n%!"
        socket
        (if jobs = 0 then "auto" else string_of_int jobs)
        (if no_cache then "off" else "on");
      Rar_service.Server.serve server;
      let s = Rar_service.Server.stats server in
      Printf.eprintf "rarsubd: served %d jobs (%d refused)%s\n%!"
        s.Rar_service.Server.jobs_done s.Rar_service.Server.refused
        (match s.Rar_service.Server.cache with
        | Some c ->
          Printf.sprintf ", cache %d hits / %d misses"
            c.Rar_service.Cache.hits c.Rar_service.Cache.misses
        | None -> "");
      0)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (an existing socket file is \
           replaced).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (default $(b,0) = one per core). Jobs run \
           concurrently across workers; each job may additionally shard \
           its own candidate evaluation.")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the shared result cache.")

let cache_entries_arg =
  Arg.(
    value
    & opt int Rar_service.Cache.default_config.Rar_service.Cache.max_entries
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"Result-cache capacity in entries (LRU beyond this).")

let cache_bytes_arg =
  Arg.(
    value
    & opt int Rar_service.Cache.default_config.Rar_service.Cache.max_bytes
    & info [ "cache-bytes" ] ~docv:"BYTES"
        ~doc:"Result-cache capacity in payload bytes (LRU beyond this).")

let max_frame_arg =
  Arg.(
    value
    & opt int Rar_service.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:
          "Largest request frame accepted; oversized frames are refused \
           with a clean error and the connection is closed.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Default soft wall-clock limit applied to jobs that carry none. \
           Deadline jobs bypass the result cache.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write JSON-lines trace events (job_queued, cache_hit, \
           cache_miss, job_done, server_stats) to $(docv).")

let () =
  let info =
    Cmd.info "rarsubd" ~version:"1.0.0"
      ~doc:
        "Resident Boolean-resubstitution service: accepts BLIF jobs over a \
         Unix-domain socket, with cross-job result caching and warm \
         per-worker state."
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ socket_arg $ jobs_arg $ no_cache_flag
            $ cache_entries_arg $ cache_bytes_arg $ max_frame_arg
            $ deadline_arg $ trace_arg)))
