(* rarsub: Boolean division and substitution from the command line.

   Subcommands:
     list                          available circuits
     show  (-c NAME | -f FILE)     print a circuit and its statistics
     optimize (-c NAME | -f FILE)  run a script + resubstitution method
*)

module Network = Logic_network.Network
module Lit_count = Logic_network.Lit_count
module Suite = Bench_suite.Suite
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Circuit loading                                                     *)
(* ------------------------------------------------------------------ *)

(* [Error (exit_code, message)]: 1 for usage mistakes, 2 for unreadable
   or malformed circuit files (parse errors carry file:line: positions). *)
let load ~circuit ~file =
  match (circuit, file) with
  | Some _, Some _ ->
    Error (1, "pass either a circuit name or a BLIF file, not both")
  | None, None -> Error (1, "pass a circuit name (-c) or a BLIF file (-f)")
  | Some name, None -> (
    match Suite.find name with
    | Some row -> Ok (Suite.build row)
    | None -> (
      match List.assoc_opt name Bench_suite.Circuits.all with
      | Some builder -> Ok (builder ())
      | None ->
        Error
          (1, Printf.sprintf "unknown circuit %S (try 'rarsub list')" name)))
  | None, Some path -> (
    try Ok (Logic_network.Blif.read_file path) with
    | Logic_network.Blif.Parse_error { line; message } ->
      Error (2, Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error msg -> Error (2, msg))

(* Like [load] but also returns the external don't-care view: the
   inline [.exdc] section of a BLIF file (named suite circuits carry
   none), with the cubes and EXOEC pairs of an [--exdc FILE] merged
   in. *)
let load_dc ~circuit ~file ~exdc =
  let base =
    match (circuit, file) with
    | None, Some path -> (
      try Ok (Logic_network.Blif.read_file_dc path) with
      | Logic_network.Blif.Parse_error { line; message } ->
        Error (2, Printf.sprintf "%s:%d: %s" path line message)
      | Sys_error msg -> Error (2, msg))
    | _ ->
      Result.map
        (fun net -> (net, Logic_network.Dont_care.create ()))
        (load ~circuit ~file)
  in
  match (base, exdc) with
  | (Error _ as e), _ | (Ok _ as e), None -> e
  | Ok (net, dc), Some path -> (
    try
      let extra = Logic_network.Blif.read_exdc_file net path in
      List.iter
        (Logic_network.Dont_care.add_excdc dc)
        (Logic_network.Dont_care.excdc extra);
      List.iter
        (fun (p1, p2) -> Logic_network.Dont_care.add_exoec_pair dc p1 p2)
        (Logic_network.Dont_care.exoec extra);
      Ok (net, dc)
    with
    | Logic_network.Blif.Parse_error { line; message } ->
      Error (2, Printf.sprintf "%s:%d: %s" path line message)
    | Sys_error msg -> Error (2, msg))

let print_counterexample output assignment =
  Printf.printf "counterexample: output %s differs under %s\n" output
    (String.concat " "
       (List.map
          (fun (name, v) -> Printf.sprintf "%s=%d" name (if v then 1 else 0))
          assignment))

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME" ~doc:"Benchmark circuit name.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Read the circuit from a BLIF file.")

let exdc_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "exdc" ] ~docv:"FILE"
        ~doc:
          "Read an external don't-care view (a BLIF $(b,.exdc) section) \
           from $(docv), merged with any inline section of the circuit \
           file. EXCDC cubes become forbidden input patterns for the \
           Boolean methods and mask the divisor filter; $(b,--verify) \
           checks modulo the view.")

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "benchmark rows (synthetic stand-ins unless noted):";
    List.iter
      (fun row ->
        let kind =
          match row.Suite.source with
          | Suite.Embedded _ -> "embedded"
          | Suite.Synthetic _ -> "synthetic"
        in
        Printf.printf "  %-14s (%s)\n" row.Suite.name kind)
      Suite.rows;
    print_endline "embedded circuits:";
    List.iter
      (fun (name, _) -> Printf.printf "  %s\n" name)
      Bench_suite.Circuits.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available circuits.")
    Term.(const (fun () -> run (); 0) $ const ())

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run circuit file dump_blif =
    match load ~circuit ~file with
    | Error (code, msg) ->
      prerr_endline msg;
      code
    | Ok net ->
      if dump_blif then print_string (Logic_network.Blif.to_string net)
      else begin
        print_string (Network.to_string net);
        Printf.printf
          "\nnodes: %d   inputs: %d   outputs: %d\n\
           literals: %d flat, %d factored\n"
          (Network.node_count net)
          (List.length (Network.inputs net))
          (List.length (Network.outputs net))
          (Lit_count.flat net) (Lit_count.factored net)
      end;
      0
  in
  let blif_flag =
    Arg.(value & flag & info [ "blif" ] ~doc:"Dump as BLIF instead of equations.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a circuit and its statistics.")
    Term.(const run $ circuit_arg $ file_arg $ blif_flag)

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let scripts =
  [
    ("none", []);
    ("a", Synth.Script.script_a);
    ("b", Synth.Script.script_b);
    ("c", Synth.Script.script_c);
    ("algebraic", Synth.Script.script_algebraic);
  ]

(* Method table: every entry takes the filter toggle and a counters
   record so optimize can report how much work the signature filter
   skipped. The "none" and "rar" methods have no divisor filtering. *)
let resubs =
  [ ("none", `Other (fun (_ : Network.t) -> ())) ]
  @ List.map
      (fun (name, meth) ->
        ((if name = "sis" then "resub" else name), `Method meth))
      Synth.Script.resub_methods
  @ [ ("rar", `Other (fun net -> ignore (Rewiring.Rar.optimize net))) ]

let optimize_cmd =
  let run circuit file exdc script method_name no_filter no_memo jobs
      sim_seed sim_words fault_budget deadline trace_file output verify
      verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    match load_dc ~circuit ~file ~exdc with
    | Error (code, msg) ->
      prerr_endline msg;
      code
    | Ok (net, dc_view) -> (
      let dc =
        if Logic_network.Dont_care.is_empty dc_view then None
        else Some dc_view
      in
      match
        match trace_file with
        | Some path -> Rar_util.Trace.to_file path
        | None -> Rar_util.Trace.disabled
      with
      | exception Sys_error msg ->
        prerr_endline msg;
        2
      | trace ->
      Fun.protect ~finally:(fun () -> Rar_util.Trace.close trace)
      @@ fun () ->
      let deadline_at =
        Option.map (fun s -> Unix.gettimeofday () +. s) deadline
      in
      let original = Network.copy net in
      let steps = List.assoc script scripts in
      let counters = Rar_util.Counters.create () in
      let jobs =
        match jobs with
        | Some 0 -> Rar_util.Pool.default_jobs ()
        | Some n -> max 1 n
        | None -> 1
      in
      let resub =
        match List.assoc method_name resubs with
        | `Other command -> command
        | `Method meth ->
          Synth.Script.resub_command ~use_filter:(not no_filter)
            ~use_memo:(not no_memo) ~jobs ~sim_seed ~sim_words
            ?fault_fuel:fault_budget ?deadline_at ~trace ~counters ?dc meth
      in
      Option.iter
        (fun dc ->
          Printf.printf "external don't cares: %d EXCDC cube(s), %d EXOEC pair(s)\n"
            (List.length (Logic_network.Dont_care.excdc dc))
            (List.length (Logic_network.Dont_care.exoec dc)))
        dc;
      Printf.printf "initial: %d factored literals\n" (Lit_count.factored net);
      let (), script_time =
        Rar_util.Stopwatch.time (fun () -> Synth.Script.run ~trace net steps)
      in
      if steps <> [] then
        Printf.printf "after script %s: %d literals (%.2fs)\n" script
          (Lit_count.factored net) script_time;
      let (), resub_time = Rar_util.Stopwatch.time (fun () -> resub net) in
      Printf.printf "after %s: %d literals (%.2fs)\n" method_name
        (Lit_count.factored net) resub_time;
      if Atomic.get counters.Rar_util.Counters.pairs_considered > 0 then
        Printf.printf "divisor filter (%s): %s\n"
          (if no_filter then "off" else "on")
          (Rar_util.Counters.to_string counters);
      if verify then begin
        let result =
          match dc with
          | None -> Logic_sim.Equiv.check net original
          | Some dc -> Logic_sim.Equiv.check_dc dc net original
        in
        let label =
          match dc with
          | None -> "equivalence check"
          | Some _ -> "equivalence check (modulo DC)"
        in
        match result with
        | Logic_sim.Equiv.Equivalent -> Printf.printf "%s: pass\n" label
        | Logic_sim.Equiv.Counterexample { output; assignment } ->
          Printf.printf "%s: FAIL\n" label;
          print_counterexample output assignment;
          exit 2
      end;
      match output with
      | Some path ->
        (match dc with
        | None -> Logic_network.Blif.write_file path net
        | Some dc -> Logic_network.Blif.write_file_dc path net dc);
        Printf.printf "written to %s\n" path;
        0
      | None -> 0)
  in
  let script_arg =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) scripts)) "a"
      & info [ "s"; "script" ] ~docv:"SCRIPT"
          ~doc:"Starting script: $(b,none), $(b,a), $(b,b), $(b,c) or \
                $(b,algebraic).")
  in
  let method_arg =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) resubs)) "ext"
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:"Resubstitution method: $(b,none), $(b,resub) (algebraic), \
                $(b,basic), $(b,ext), $(b,ext-gdc) or $(b,rar).")
  in
  let no_filter_flag =
    Arg.(
      value & flag
      & info [ "no-filter" ]
          ~doc:
            "Disable the simulation-signature divisor filter (seed-style \
             exhaustive candidate ranking) for A/B comparisons.")
  in
  let no_memo_flag =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:
            "Disable the division-failure memo (re-attempt every pair on \
             every pass, as the seed did) for A/B comparisons. Final \
             networks are bit-identical either way.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Evaluate ranked divisor candidates speculatively on $(docv) \
             domains (default 1). Results are bit-identical for any value; \
             $(b,0) means one domain per core, negative values mean 1.")
  in
  let sim_seed_arg =
    Arg.(
      value
      & opt int Logic_sim.Signature.default_seed
      & info [ "sim-seed" ] ~docv:"SEED"
          ~doc:"RNG seed for the simulation-signature divisor filter.")
  in
  let sim_words_arg =
    Arg.(
      value
      & opt int Logic_sim.Signature.default_words
      & info [ "sim-words" ] ~docv:"N"
          ~doc:
            "Signature vector size in 64-bit words (default 8 = 512 \
             bits). Larger vectors make the signature engines more \
             discriminating at more simulation cost per node.")
  in
  let fault_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"N"
          ~doc:
            "Cap the implication steps each division attempt may spend. \
             Exhausted attempts degrade to their algebraic result instead \
             of running on; the run always completes.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Soft wall-clock limit for the resubstitution phase. Work \
             still pending when it passes is skipped (degraded), never \
             aborted.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write structured JSON-lines trace events (phase spans, \
             per-unit timings, degradations, counter snapshots) to \
             $(docv). No overhead when absent.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the result as BLIF.")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Equivalence-check the result (exit 2 on failure).")
  in
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Log every committed substitution.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimise a circuit with a script and a method.")
    Term.(
      const run $ circuit_arg $ file_arg $ exdc_arg $ script_arg $ method_arg
      $ no_filter_flag $ no_memo_flag $ jobs_arg $ sim_seed_arg
      $ sim_words_arg $ fault_budget_arg $ deadline_arg $ trace_arg
      $ output_arg $ verify_flag $ verbose_flag)

(* ------------------------------------------------------------------ *)
(* optimize-aig                                                        *)
(* ------------------------------------------------------------------ *)

(* Windowed resubstitution over an ASCII-AIGER circuit: the same
   scripts and methods as [optimize], run per fanin-bounded window of
   the AIG (Synth.Aig_opt) so tens-of-thousands-of-gate benchmarks fit.
   Exit codes follow [optimize]: 1 usage, 2 unreadable input or failed
   verification. *)
let optimize_aig_cmd =
  let run file exdc script method_name no_filter no_memo jobs sim_seed
      sim_words fault_budget deadline max_window max_leaves trace_file output
      verify verbose =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    let aig =
      try Ok (Logic_network.Aiger.read_file file) with
      | Logic_network.Aiger.Parse_error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" file line message)
      | Sys_error msg -> Error msg
    in
    (* The view is resolved against a shell network holding just the
       AIG's input names: [.exdc] cubes are over primary inputs, which
       is all the per-window projection ever looks at. *)
    let dc =
      match (aig, exdc) with
      | Error _, _ | _, None -> Ok None
      | Ok aig, Some path -> (
        let shell = Network.create () in
        List.iter
          (fun (name, _) -> ignore (Network.add_input shell name))
          (Logic_network.Aig.inputs aig);
        try
          let dc = Logic_network.Blif.read_exdc_file shell path in
          if Logic_network.Dont_care.is_empty dc then Ok None
          else Ok (Some dc)
        with
        | Logic_network.Blif.Parse_error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message)
        | Sys_error msg -> Error msg)
    in
    match
      match (aig, dc) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok aig, Ok dc -> Ok (aig, dc)
    with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok (aig, dc) -> (
      match
        match trace_file with
        | Some path -> Rar_util.Trace.to_file path
        | None -> Rar_util.Trace.disabled
      with
      | exception Sys_error msg ->
        prerr_endline msg;
        2
      | trace ->
        Fun.protect ~finally:(fun () -> Rar_util.Trace.close trace)
        @@ fun () ->
        let deadline_at =
          Option.map (fun s -> Unix.gettimeofday () +. s) deadline
        in
        let counters = Rar_util.Counters.create () in
        let jobs =
          match jobs with
          | Some 0 -> Rar_util.Pool.default_jobs ()
          | Some n -> max 1 n
          | None -> 1
        in
        let config =
          {
            Synth.Aig_opt.default_config with
            Synth.Aig_opt.script = List.assoc script scripts;
            meth = List.assoc method_name Synth.Script.resub_methods;
            use_filter = not no_filter;
            use_memo = not no_memo;
            jobs;
            sim_seed;
            sim_words;
            max_gates = max_window;
            max_leaves;
            dc;
          }
        in
        Option.iter
          (fun dc ->
            Printf.printf "external don't cares: %d EXCDC cube(s)\n"
              (List.length (Logic_network.Dont_care.excdc dc)))
          dc;
        Printf.printf "initial: %d gates, %d inputs\n"
          (Logic_network.Aig.num_ands aig)
          (Logic_network.Aig.num_inputs aig);
        let (optimised, stats), seconds =
          Rar_util.Stopwatch.time (fun () ->
              Synth.Aig_opt.optimize ~config ?fault_fuel:fault_budget
                ?deadline_at ~trace ~counters aig)
        in
        Printf.printf
          "after %s/%s: %d gates (%.2fs)\n\
           windows: %d   accepted: %d   reverted: %d   skipped: %d\n"
          script method_name stats.Synth.Aig_opt.gates_after seconds
          stats.Synth.Aig_opt.windows stats.Synth.Aig_opt.accepted
          stats.Synth.Aig_opt.reverted stats.Synth.Aig_opt.skipped;
        if Atomic.get counters.Rar_util.Counters.pairs_considered > 0 then
          Printf.printf "divisor filter (%s): %s\n"
            (if no_filter then "off" else "on")
            (Rar_util.Counters.to_string counters);
        if verify then begin
          let before = Logic_network.Aig.to_network aig
          and after = Logic_network.Aig.to_network optimised in
          let result =
            match dc with
            | None -> Logic_sim.Equiv.check before after
            | Some dc -> Logic_sim.Equiv.check_dc dc before after
          in
          let label =
            match dc with
            | None -> "equivalence check"
            | Some _ -> "equivalence check (modulo DC)"
          in
          match result with
          | Logic_sim.Equiv.Equivalent -> Printf.printf "%s: pass\n" label
          | Logic_sim.Equiv.Counterexample { output; assignment } ->
            Printf.printf "%s: FAIL\n" label;
            print_counterexample output assignment;
            exit 2
        end;
        match output with
        | Some path ->
          Logic_network.Aiger.write_file path optimised;
          Printf.printf "written to %s\n" path;
          0
        | None -> 0)
  in
  let file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Read the circuit from an ASCII-AIGER ($(b,.aag)) file.")
  in
  let script_arg =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) scripts)) "a"
      & info [ "s"; "script" ] ~docv:"SCRIPT"
          ~doc:"Starting script run on each window: $(b,none), $(b,a), \
                $(b,b), $(b,c) or $(b,algebraic).")
  in
  let method_arg =
    Arg.(
      value
      & opt
          (enum
             (List.map (fun (n, _) -> (n, n)) Synth.Script.resub_methods))
          "ext"
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:"Resubstitution method per window: $(b,sis), $(b,basic), \
                $(b,ext) or $(b,ext-gdc).")
  in
  let no_filter_flag =
    Arg.(
      value & flag
      & info [ "no-filter" ]
          ~doc:"Disable the simulation-signature divisor filter.")
  in
  let no_memo_flag =
    Arg.(
      value & flag
      & info [ "no-memo" ] ~doc:"Disable the division-failure memo.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Per-window speculative-evaluation parallelism (default 1). \
             Output bytes are identical for any value; $(b,0) means one \
             domain per core.")
  in
  let sim_seed_arg =
    Arg.(
      value
      & opt int Logic_sim.Signature.default_seed
      & info [ "sim-seed" ] ~docv:"SEED"
          ~doc:"RNG seed for the simulation-signature divisor filter.")
  in
  let sim_words_arg =
    Arg.(
      value
      & opt int Logic_sim.Signature.default_words
      & info [ "sim-words" ] ~docv:"N"
          ~doc:
            "Signature vector size in 64-bit words for the per-window \
             engines (default 8 = 512 bits).")
  in
  let fault_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"N"
          ~doc:"Cap the implication steps each division attempt may spend.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Soft wall-clock limit. Windows not yet spliced when it \
             passes are skipped; the result so far is still written.")
  in
  let max_window_arg =
    Arg.(
      value
      & opt int Synth.Aig_opt.default_config.Synth.Aig_opt.max_gates
      & info [ "max-window" ] ~docv:"N"
          ~doc:"Gate cap per optimisation window.")
  in
  let max_leaves_arg =
    Arg.(
      value
      & opt int Synth.Aig_opt.default_config.Synth.Aig_opt.max_leaves
      & info [ "max-leaves" ] ~docv:"N"
          ~doc:"Leaf (window input) cap per optimisation window.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write structured JSON-lines trace events to $(docv).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the result as ASCII AIGER.")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Equivalence-check the result (exit 2 on failure).")
  in
  let verbose_flag =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")
  in
  Cmd.v
    (Cmd.info "optimize-aig"
       ~doc:"Optimise an ASCII-AIGER circuit window by window.")
    Term.(
      const run $ file_arg $ exdc_arg $ script_arg $ method_arg
      $ no_filter_flag $ no_memo_flag $ jobs_arg $ sim_seed_arg
      $ sim_words_arg $ fault_budget_arg $ deadline_arg $ max_window_arg
      $ max_leaves_arg $ trace_arg $ output_arg $ verify_flag
      $ verbose_flag)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

(* Submit one job to a running rarsubd and print the optimised BLIF on
   stdout (stderr carries the summary, so stdout pipes clean). The
   request mirrors the optimize flags; the daemon guarantees the reply
   is byte-identical to the corresponding cold [optimize -o] run. *)
let client_cmd =
  let read_all ic =
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf ic 4096
       done
     with End_of_file -> ());
    buf
  in
  let run socket circuit file exdc script method_name no_filter no_memo jobs
      sim_seed sim_words fault_budget deadline no_cache timeout output =
    let blif =
      (* Inline [.exdc] sections ride along in the body (the daemon
         splits them back out); an [--exdc FILE] travels verbatim in the
         request's [exdc] field and is merged daemon-side. *)
      match (circuit, file) with
      | None, None -> Ok (Buffer.contents (read_all stdin))
      | _ ->
        Result.map
          (fun (net, dc) -> Logic_network.Blif.to_string_dc net dc)
          (load_dc ~circuit ~file ~exdc:None)
    in
    let exdc_text =
      match exdc with
      | None -> Ok None
      | Some path -> (
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              Ok (Some (really_input_string ic (in_channel_length ic))))
        with Sys_error msg -> Error (2, msg))
    in
    match
      match (blif, exdc_text) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok blif, Ok exdc -> Ok (blif, exdc)
    with
    | Error (code, msg) ->
      prerr_endline msg;
      code
    | Ok (blif, exdc) -> (
      let request =
        {
          (Rar_service.Protocol.default_request ~blif) with
          script;
          meth = method_name;
          use_filter = not no_filter;
          use_memo = not no_memo;
          jobs = (match jobs with Some n -> max 0 n | None -> 1);
          sim_seed;
          sim_words;
          fault_budget;
          deadline;
          use_cache = not no_cache;
          exdc;
        }
      in
      match Rar_service.Server.Client.round_trip ?timeout ~socket request with
      | exception Rar_service.Server.Client.Timeout ->
        prerr_endline "rarsub client: timed out waiting for the daemon";
        3
      | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "rarsub client: %s: %s\n" socket
          (Unix.error_message err);
        3
      | exception Rar_service.Protocol.Frame_error msg ->
        (* A daemon that vanished mid-session (SIGPIPE is ignored in
           [Client.connect]; EPIPE surfaces here as a [Frame_error])
           is reported like a malformed input, not a signal death. *)
        Printf.eprintf "rarsub client: %s: %s\n" socket msg;
        2
      | Rar_service.Protocol.Refused message ->
        Printf.eprintf "rarsub client: refused: %s\n" message;
        2
      | Rar_service.Protocol.Result { blif; literals; cache_hit; _ } ->
        Printf.eprintf "literals: %d (%s)\n" literals
          (if cache_hit then "cache hit" else "cache miss");
        (match output with
        | Some path ->
          let oc = open_out path in
          output_string oc blif;
          close_out oc
        | None -> print_string blif);
        0)
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The rarsubd Unix-domain socket.")
  in
  let script_arg =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) scripts)) "a"
      & info [ "s"; "script" ] ~docv:"SCRIPT" ~doc:"Starting script.")
  in
  let method_arg =
    Arg.(
      value
      & opt (enum (List.map (fun (n, _) -> (n, n)) resubs)) "ext"
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc:"Resubstitution method.")
  in
  let no_filter_flag =
    Arg.(value & flag & info [ "no-filter" ] ~doc:"Disable the divisor filter.")
  in
  let no_memo_flag =
    Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable the division memo.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains the job may use (default 1; $(b,0) means one \
             per daemon core). Output bytes are identical for any value.")
  in
  let sim_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sim-seed" ] ~docv:"SEED"
          ~doc:"RNG seed for the divisor filter (default: the daemon's).")
  in
  let sim_words_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sim-words" ] ~docv:"N"
          ~doc:
            "Signature vector size in 64-bit words (default: the \
             daemon's).")
  in
  let fault_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"N"
          ~doc:"Cap the implication steps per division attempt.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Soft wall-clock limit for the job. Deadline jobs are never \
             served from or stored into the result cache.")
  in
  let no_cache_flag =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the daemon's result cache for this job.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Give up if the daemon has not replied within $(docv).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the result BLIF to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit a job to a running rarsubd (reads BLIF from stdin unless \
          $(b,-c)/$(b,-f) is given).")
    Term.(
      const run $ socket_arg $ circuit_arg $ file_arg $ exdc_arg
      $ script_arg $ method_arg $ no_filter_flag $ no_memo_flag $ jobs_arg
      $ sim_seed_arg $ sim_words_arg $ fault_budget_arg $ deadline_arg
      $ no_cache_flag $ timeout_arg $ output_arg)

let () =
  let info =
    Cmd.info "rarsub" ~version:"1.0.0"
      ~doc:"Boolean division and substitution via redundancy addition and removal."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; show_cmd; optimize_cmd; optimize_aig_cmd; client_cmd ]))
