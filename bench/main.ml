(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section V) plus the illustrative figures of Sections II-IV,
   and registers one Bechamel timing benchmark per table.

   Usage:
     main.exe                 run everything (figures, tables, benches)
     main.exe table2 table5   run selected sections
     main.exe quick           tables on the small row subset only
     main.exe bench quick     write the BENCH_resub.json perf snapshot
     main.exe jobscheck quick parallel-vs-sequential determinism gate
     main.exe shardcheck quick totals gate across jobs x memo grid
     main.exe tracecheck quick degraded-run + trace JSON-lines gate
     main.exe memocheck quick memo-on vs --no-memo bit-identity gate
     main.exe dccheck quick   external don't-care discipline gate
     main.exe kcheck quick    constructive k-resub identity + floor gate
     main.exe cubeops         packed-kernel vs list-cube microbenchmark
     main.exe servicecheck quick  daemon miss/hit + byte-identity gate
     main.exe service quick   daemon throughput snapshot (BENCH_service.json)
     main.exe aigcheck        AIGER round-trip + windowed-resub gate
     main.exe aig             >=10k-gate AIG snapshot (BENCH_aig.json)
   Sections: fig1 fig2 table1 fig4 table2 table3 table4 table5 ablation
   bech bench jobscheck shardcheck tracecheck memocheck dccheck kcheck
   cubeops servicecheck service aigcheck aig
   Options (key=value): jobs=N (bench parallelism, default 1, 0 = one per
   core; snapshots at jobs=1 are gated >20%% CPU-regression against the
   previous file, and jobs>1 snapshots >20%% wall-clock regression
   against a previous snapshot taken at the same job count), sim-seed=N
   (signature-filter seed), sim-words=N (signature vector size in 64-bit
   words, recorded in the snapshot), clients=N (service bench
   concurrency, default 8). *)

open Twolevel
module Network = Logic_network.Network
module Builder = Logic_network.Builder
module Lit_count = Logic_network.Lit_count
module Equiv = Logic_sim.Equiv
module Suite = Bench_suite.Suite
module Table = Rar_util.Text_table

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* The four resubstitution methods compared by Tables II-V.            *)
(* ------------------------------------------------------------------ *)

let methods =
  [
    ("sis", Synth.Script.resub_algebraic);
    ("basic", Synth.Script.resub_basic);
    ("ext.", Synth.Script.resub_ext);
    ("ext. GDC", Synth.Script.resub_ext_gdc);
  ]

type cell = { lits : int; cpu : float; ok : bool }

let run_cell ~reference net command =
  let scratch = Network.copy net in
  let (), cpu = Rar_util.Stopwatch.time (fun () -> command scratch) in
  {
    lits = Lit_count.factored scratch;
    cpu;
    ok = Equiv.equivalent scratch reference;
  }

(* One of Tables II/III/IV: a starting script, then each method from the
   same starting point. *)
let comparison_table ~title ~script rows =
  section title;
  let columns =
    (("circuit", Table.Left) :: ("init.", Table.Right)
    :: List.concat_map
         (fun (name, _) -> [ (name, Table.Right); ("cpu", Table.Right) ])
         methods)
    @ [ ("verified", Table.Left) ]
  in
  let table = Table.create columns in
  let totals = Array.make (1 + List.length methods) 0 in
  let all_ok = ref true in
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net script;
      let init = Lit_count.factored net in
      let cells =
        List.map (fun (_, cmd) -> run_cell ~reference:net net cmd) methods
      in
      totals.(0) <- totals.(0) + init;
      List.iteri (fun i c -> totals.(i + 1) <- totals.(i + 1) + c.lits) cells;
      let ok = List.for_all (fun c -> c.ok) cells in
      if not ok then all_ok := false;
      Table.add_row table
        ((row.Suite.name :: string_of_int init
         :: List.concat_map
              (fun c ->
                [ string_of_int c.lits; Rar_util.Stopwatch.seconds_to_string c.cpu ])
              cells)
        @ [ (if ok then "yes" else "NO") ]))
    rows;
  Table.add_separator table;
  Table.add_row table
    (("total" :: string_of_int totals.(0)
     :: List.concat_map
          (fun i -> [ string_of_int totals.(i + 1); "" ])
          (List.init (List.length methods) Fun.id))
    @ [ "" ]);
  let percent i =
    Printf.sprintf "%.1f%%"
      (100.0
      *. float_of_int (totals.(0) - totals.(i + 1))
      /. float_of_int (max totals.(0) 1))
  in
  Table.add_row table
    (("improvement" :: ""
     :: List.concat_map
          (fun i -> [ percent i; "" ])
          (List.init (List.length methods) Fun.id))
    @ [ "" ]);
  print_string (Table.render table);
  Printf.printf
    "(all cells equivalence-checked against the starting network: %s)\n"
    (if !all_ok then "pass" else "FAILURES PRESENT");
  Printf.printf
    "Expected shape (paper): every configuration beats sis; ext. GDC best;\n\
     basic/ext CPU comparable to sis, ext. GDC slower.\n"

(* Table V: script.algebraic with each method replacing the resub steps. *)
let table_v rows =
  section "Table V - script.algebraic with resub replaced by each algorithm";
  let columns =
    (("circuit", Table.Left) :: ("init.", Table.Right)
    :: List.concat_map
         (fun (name, _) -> [ (name, Table.Right); ("cpu", Table.Right) ])
         methods)
    @ [ ("verified", Table.Left) ]
  in
  let table = Table.create columns in
  let totals = Array.make (1 + List.length methods) 0 in
  let all_ok = ref true in
  List.iter
    (fun row ->
      let original = Suite.build row in
      (* The "init." column is the script run with resub disabled. *)
      let base = Network.copy original in
      Synth.Script.run base Synth.Script.script_algebraic;
      let init = Lit_count.factored base in
      let cells =
        List.map
          (fun (_, resub) ->
            let scratch = Network.copy original in
            let (), cpu =
              Rar_util.Stopwatch.time (fun () ->
                  Synth.Script.run ~resub scratch Synth.Script.script_algebraic)
            in
            {
              lits = Lit_count.factored scratch;
              cpu;
              ok = Equiv.equivalent scratch original;
            })
          methods
      in
      totals.(0) <- totals.(0) + init;
      List.iteri (fun i c -> totals.(i + 1) <- totals.(i + 1) + c.lits) cells;
      let ok = List.for_all (fun c -> c.ok) cells in
      if not ok then all_ok := false;
      Table.add_row table
        ((row.Suite.name :: string_of_int init
         :: List.concat_map
              (fun c ->
                [ string_of_int c.lits; Rar_util.Stopwatch.seconds_to_string c.cpu ])
              cells)
        @ [ (if ok then "yes" else "NO") ]))
    rows;
  Table.add_separator table;
  Table.add_row table
    (("total" :: string_of_int totals.(0)
     :: List.concat_map
          (fun i -> [ string_of_int totals.(i + 1); "" ])
          (List.init (List.length methods) Fun.id))
    @ [ "" ]);
  print_string (Table.render table);
  Printf.printf
    "(all cells equivalence-checked against the original network: %s)\n"
    (if !all_ok then "pass" else "FAILURES PRESENT");
  Printf.printf
    "Paper's observed anomaly: inside script.algebraic, ext. GDC may\n\
     slightly underperform ext. because of the locally greedy\n\
     first-positive-gain policy.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 1 - classic redundancy addition and removal                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Fig. 1 - redundancy addition and removal (Section II review)";
  let net =
    Builder.of_spec ~inputs:[ "a"; "b"; "c" ]
      ~nodes:[ ("x", "ab"); ("y", "ax + c") ]
      ~outputs:[ "y"; "x" ]
  in
  Printf.printf "Irredundant circuit:\n%s" (Network.to_string net);
  Printf.printf "literals (factored): %d\n" (Lit_count.factored net);
  let y = Builder.node net "y" and b = Builder.node net "b" in
  subsection "adding the dotted wire b -> cube (a x) of y";
  let added =
    Rewiring.Rar.try_add_wire net ~node:y ~cube:0 ~source:b ~phase:true
  in
  Printf.printf "addition accepted (added wire proven redundant): %b\n" added;
  Printf.printf "%s" (Network.to_string net);
  subsection "removing the wires the addition made redundant";
  let removed = Rewiring.Remove.run net in
  Printf.printf "wires removed: %d\n%s" removed (Network.to_string net);
  Printf.printf "literals (factored): %d\n" (Lit_count.factored net);
  let reference =
    Builder.of_spec ~inputs:[ "a"; "b"; "c" ]
      ~nodes:[ ("x", "ab"); ("y", "ax + c") ]
      ~outputs:[ "y"; "x" ]
  in
  Printf.printf "equivalent to the original: %b\n"
    (Equiv.equivalent net reference)

(* ------------------------------------------------------------------ *)
(* Fig. 2 - basic division walk-through                                *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2 - basic Boolean division, step by step (Section III)";
  let net =
    Builder.of_spec
      ~inputs:[ "a"; "b"; "c"; "d" ]
      ~nodes:[ ("D", "a + b"); ("f", "ad + bd + a'b'c") ]
      ~outputs:[ "f"; "D" ]
  in
  let f = Builder.node net "f" and d = Builder.node net "D" in
  Printf.printf "(a) two nodes, f to be divided by D:\n%s" (Network.to_string net);
  Printf.printf "f factored literals: %d\n" (Lit_count.node_factored net f);
  subsection "(b) remainder split by the SOS test";
  List.iteri
    (fun i _ ->
      let lifted = Booldiv.Net_cube.of_cube_index net f i in
      let inside =
        List.exists
          (fun j ->
            Booldiv.Net_cube.contained_by lifted
              (Booldiv.Net_cube.of_cube_index net d j))
          (List.init (Cover.cube_count (Network.cover net d)) Fun.id)
      in
      Printf.printf "  cube %s: %s\n"
        (Booldiv.Net_cube.to_string net lifted)
        (if inside then "contained in a cube of D -> region f1"
         else "not contained -> remainder r"))
    (Cover.cubes (Network.cover net f));
  subsection "(c) add the bold AND (redundant a priori by Lemma 1)";
  Printf.printf
    "f is restructured as (f1 . D) + r; no redundancy test is needed for\n\
     the addition - this is the efficiency claim over classic RAR.\n";
  subsection "(d)+(e) implication-based removal inside the f1 region";
  (match Booldiv.Basic_division.divide net ~f ~d with
  | None -> Printf.printf "division not applicable\n"
  | Some outcome ->
    Printf.printf "wires removed by implications: %d\n" outcome.wires_removed;
    Printf.printf "After folding the quotient back (f = q.D + r):\n%s"
      (Network.to_string net);
    Printf.printf "f factored literals: %d\n" (Lit_count.node_factored net f));
  subsection "second pass: dividing by the complement D'";
  (match Booldiv.Basic_division.divide ~phase:false net ~f ~d with
  | None -> Printf.printf "complement division not applicable\n"
  | Some _ ->
    Printf.printf "%s" (Network.to_string net);
    Printf.printf
      "f factored literals: %d (the paper's 6 -> 5 -> 4 progression)\n"
      (Lit_count.node_factored net f));
  let reference =
    Builder.of_spec
      ~inputs:[ "a"; "b"; "c"; "d" ]
      ~nodes:[ ("D", "a + b"); ("f", "ad + bd + a'b'c") ]
      ~outputs:[ "f"; "D" ]
  in
  Printf.printf "equivalent to the original: %b\n"
    (Equiv.equivalent net reference)

(* ------------------------------------------------------------------ *)
(* Fig. 3 / Table I / Fig. 4 - extended division                       *)
(* ------------------------------------------------------------------ *)

let extended_example () =
  Builder.of_spec
    ~inputs:[ "a"; "b"; "c"; "x"; "y" ]
    ~nodes:[ ("D", "ab + a'b' + c"); ("f", "abx + a'b'x + aby + a'b'y") ]
    ~outputs:[ "f"; "D" ]

let table1_and_fig4 () =
  section "Fig. 3 + Table I - votes for candidate core divisors (Section IV)";
  let net = extended_example () in
  let f = Builder.node net "f" and d = Builder.node net "D" in
  Printf.printf "%s" (Network.to_string net);
  Printf.printf
    "\nEach literal wire of f runs its fault implications with no divisor\n\
     constraint; divisor cubes implied to 0 are the wire's vote.\n\n";
  let entries = Booldiv.Vote.collect net ~f ~pool:[ d ] in
  subsection "Table I(a) - raw vote table";
  print_string (Booldiv.Vote.table_to_string net entries);
  let valid = Booldiv.Vote.valid_entries entries in
  subsection "Table I(b) - after the SOS validity filter";
  print_string (Booldiv.Vote.table_to_string net valid);
  section "Fig. 4 - intersection graph of the candidate core divisors";
  let arr = Array.of_list valid in
  let candidates = Array.map (fun e -> e.Booldiv.Vote.candidates) arr in
  Array.iteri
    (fun i e ->
      Printf.printf "  v%d: %s\n" i
        (Atpg.Fault.wire_to_string net e.Booldiv.Vote.wire))
    arr;
  Printf.printf "edges (votes intersect):\n ";
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let inter =
        List.filter (fun c -> List.mem c candidates.(j)) candidates.(i)
      in
      if inter <> [] then Printf.printf " v%d-v%d" i j
    done
  done;
  print_newline ();
  let serves v core =
    List.exists
      (fun (m, j) ->
        Booldiv.Net_cube.contained_by arr.(v).Booldiv.Vote.wire_cube
          (Booldiv.Net_cube.of_cube_index net m j))
      core
  in
  (match Booldiv.Clique.best_core ~candidates ~serves with
  | None -> Printf.printf "no usable clique\n"
  | Some { members; core } ->
    Printf.printf "maximal clique: {%s}  ->  core divisor: %s\n"
      (String.concat ", " (List.map (Printf.sprintf "v%d") members))
      (String.concat " + "
         (List.map (Booldiv.Vote.pool_cube_to_string net) core)));
  subsection "performing the extended division";
  let before = Lit_count.factored net in
  (match Booldiv.Extended_division.try_run net ~f ~pool:[ d ] with
  | None -> Printf.printf "no profitable extended division\n"
  | Some outcome ->
    Printf.printf
      "core cubes: %d (from %d node(s)), divisor decomposed: %b,\n\
       wires expected removed: %d, literal gain: %d\n"
      outcome.core_cubes outcome.core_sources outcome.decomposed_divisor
      outcome.expected_removals outcome.literal_gain;
    Printf.printf "%s" (Network.to_string net);
    Printf.printf "total factored literals: %d -> %d\n" before
      (Lit_count.factored net));
  Printf.printf "equivalent to the original: %b\n"
    (Equiv.equivalent net (extended_example ()))

(* ------------------------------------------------------------------ *)
(* Ablations - the design choices DESIGN.md calls out                  *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations - switching off one design choice at a time (Script A)";
  let base = Booldiv.Substitute.extended_gdc_config in
  let variants =
    [
      ("full (ext. GDC)", base);
      ("no global implications (region only)", { base with gdc = false });
      ("no recursive learning", { base with learn_depth = 0 });
      ("no complement-phase division", { base with use_complement = false });
      ("no POS substitution", { base with try_pos = false });
      ("no extended division (basic mode)",
       { base with mode = Booldiv.Substitute.Basic });
      ("divisor pool of 1", { base with max_pool = 1 });
      ("single pass", { base with max_passes = 1 });
    ]
  in
  let rows =
    List.filter
      (fun r -> List.mem r.Suite.name [ "9sym"; "apex7"; "example2"; "rot"; "C880" ])
      Suite.rows
  in
  let prepared =
    List.map
      (fun row ->
        let net = Suite.build row in
        Synth.Script.run net Synth.Script.script_a;
        net)
      rows
  in
  let table =
    Table.create
      [
        ("variant", Table.Left);
        ("literals", Table.Right);
        ("cpu", Table.Right);
        ("verified", Table.Left);
      ]
  in
  let init = List.fold_left (fun acc n -> acc + Lit_count.factored n) 0 prepared in
  Table.add_row table [ "(initial)"; string_of_int init; ""; "" ];
  List.iter
    (fun (name, config) ->
      let total = ref 0 and ok = ref true in
      let (), cpu =
        Rar_util.Stopwatch.time (fun () ->
            List.iter
              (fun net ->
                let scratch = Network.copy net in
                ignore (Booldiv.Substitute.run ~config scratch);
                total := !total + Lit_count.factored scratch;
                if not (Equiv.equivalent scratch net) then ok := false)
              prepared)
      in
      Table.add_row table
        [
          name;
          string_of_int !total;
          Rar_util.Stopwatch.seconds_to_string cpu;
          (if !ok then "yes" else "NO");
        ])
    variants;
  print_string (Table.render table);
  print_endline
    "Each row disables one mechanism; literal totals quantify its\n\
     contribution on a 5-circuit subset."

(* ------------------------------------------------------------------ *)
(* cubeops - packed-kernel microbenchmark                              *)
(* ------------------------------------------------------------------ *)

(* The seed's list-based cube operations, kept here as the in-bench
   baseline so the snapshot records what the packed Cube_kernel buys on
   the two hottest primitives (containment and intersection). *)
module List_cube = struct
  let rec subset small big =
    match (small, big) with
    | [], _ -> true
    | _ :: _, [] -> false
    | s :: srest, b :: brest ->
      if s = b then subset srest brest
      else if b < s then subset small brest
      else false

  let rec merge c1 c2 =
    match (c1, c2) with
    | [], c | c, [] -> Some c
    | l1 :: r1, l2 :: r2 ->
      if l1 = l2 then Option.map (fun rest -> l1 :: rest) (merge r1 r2)
      else if l1 / 2 = l2 / 2 then None
      else if l1 < l2 then Option.map (fun rest -> l1 :: rest) (merge r1 c2)
      else Option.map (fun rest -> l2 :: rest) (merge c1 r2)
end

type cubeops_result = {
  co_vars : int;
  co_cubes : int;
  contain_base_mops : float;
  contain_kernel_mops : float;
  inter_base_mops : float;
  inter_kernel_mops : float;
}

let cubeops_speedups r =
  ( r.contain_kernel_mops /. Float.max r.contain_base_mops 1e-9,
    r.inter_kernel_mops /. Float.max r.inter_base_mops 1e-9 )

(* Synthetic covers wide enough to span multiple kernel words (96
   variables = 4 packed words) with realistic cube sizes. Rounds grow
   until each measured region runs at least ~0.2 CPU seconds, so the
   Mops figures are stable across machines. *)
let cubeops_measure () =
  let rng = Rar_util.Rng.create 0xC0BE5 in
  let vars = 96 and ncubes = 192 in
  let random_cube () =
    let n = 4 + Rar_util.Rng.int rng 9 in
    let rec pick acc k =
      if k = 0 then acc
      else begin
        let v = Rar_util.Rng.int rng vars in
        if List.exists (fun code -> code lsr 1 = v) acc then pick acc k
        else
          pick
            (((2 * v) + if Rar_util.Rng.bool rng then 1 else 0) :: acc)
            (k - 1)
      end
    in
    List.sort Int.compare (pick [] n)
  in
  let lists = Array.init ncubes (fun _ -> random_cube ()) in
  let kernels = Array.map Cube_kernel.of_code_set lists in
  let sink = ref 0 in
  let measure f =
    let rec go rounds =
      let (), cpu =
        Rar_util.Stopwatch.time_cpu (fun () ->
            for _ = 1 to rounds do
              f ()
            done)
      in
      if cpu >= 0.2 then
        float_of_int (rounds * ncubes * ncubes) /. cpu /. 1e6
      else go (rounds * 4)
    in
    go 1
  in
  let contain_base_mops =
    measure (fun () ->
        for i = 0 to ncubes - 1 do
          for j = 0 to ncubes - 1 do
            if List_cube.subset lists.(i) lists.(j) then incr sink
          done
        done)
  in
  let contain_kernel_mops =
    measure (fun () ->
        for i = 0 to ncubes - 1 do
          for j = 0 to ncubes - 1 do
            if Cube_kernel.subset kernels.(i) kernels.(j) then incr sink
          done
        done)
  in
  let inter_base_mops =
    measure (fun () ->
        for i = 0 to ncubes - 1 do
          for j = 0 to ncubes - 1 do
            match List_cube.merge lists.(i) lists.(j) with
            | Some _ -> incr sink
            | None -> ()
          done
        done)
  in
  let inter_kernel_mops =
    measure (fun () ->
        for i = 0 to ncubes - 1 do
          for j = 0 to ncubes - 1 do
            match Cube_kernel.merge kernels.(i) kernels.(j) with
            | Some _ -> incr sink
            | None -> ()
          done
        done)
  in
  ignore !sink;
  {
    co_vars = vars;
    co_cubes = ncubes;
    contain_base_mops;
    contain_kernel_mops;
    inter_base_mops;
    inter_kernel_mops;
  }

(* Key names deliberately avoid the "cpu_seconds" substring: the snapshot
   regression parser sums every such occurrence after its marker. *)
let cubeops_json r =
  Printf.sprintf
    "{\"vars\": %d, \"cubes\": %d, \"containment\": {\"baseline_mops\": \
     %.2f, \"kernel_mops\": %.2f, \"speedup\": %.2f}, \"intersect\": \
     {\"baseline_mops\": %.2f, \"kernel_mops\": %.2f, \"speedup\": %.2f}}"
    r.co_vars r.co_cubes r.contain_base_mops r.contain_kernel_mops
    (fst (cubeops_speedups r))
    r.inter_base_mops r.inter_kernel_mops
    (snd (cubeops_speedups r))

let print_cubeops r =
  let contain_speedup, inter_speedup = cubeops_speedups r in
  Printf.printf
    "cubeops (%d vars, %d cubes, all pairs):\n\
    \  containment  %7.2f Mops list  %7.2f Mops packed  (%.1fx)\n\
    \  intersect    %7.2f Mops list  %7.2f Mops packed  (%.1fx)\n"
    r.co_vars r.co_cubes r.contain_base_mops r.contain_kernel_mops
    contain_speedup r.inter_base_mops r.inter_kernel_mops inter_speedup

let cubeops_report () =
  section "cubeops - packed cube kernel vs seed list cubes";
  print_cubeops (cubeops_measure ())

(* ------------------------------------------------------------------ *)
(* bench - machine-readable perf snapshot (BENCH_resub.json)           *)
(* ------------------------------------------------------------------ *)

(* The previous snapshot's per-method totals for one timing key, for
   the regression gates. Parsed by hand (no JSON dependency): every
   occurrence of the key after the "totals" marker belongs to a
   per-method total record. *)
let previous_totals_sum ~key path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let content =
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let totals_at =
      let marker = "\"totals\"" in
      let rec find i =
        if i + String.length marker > String.length content then None
        else if String.sub content i (String.length marker) = marker then
          Some i
        else find (i + 1)
      in
      find 0
    in
    (match totals_at with
    | None -> None
    | Some start ->
      let sum = ref 0.0 and found = ref false in
      let rec scan i =
        if i + String.length key > String.length content then ()
        else if String.sub content i (String.length key) = key then begin
          let j = ref (i + String.length key) in
          let k = ref !j in
          while
            !k < String.length content
            && (match content.[!k] with
               | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
               | _ -> false)
          do
            incr k
          done;
          (match float_of_string_opt (String.sub content !j (!k - !j)) with
          | Some v ->
            sum := !sum +. v;
            found := true
          | None -> ());
          scan !k
        end
        else scan (i + 1)
      in
      scan start;
      if !found then Some !sum else None)

let previous_total_cpu = previous_totals_sum ~key:"\"cpu_seconds\": "

let previous_total_wall = previous_totals_sum ~key:"\"wall_seconds\": "

(* The job count the previous snapshot was taken at: its first
   "jobs" key. Wall-clock figures are only comparable between runs at
   equal parallelism. *)
let previous_jobs path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let content =
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let key = "\"jobs\": " in
    let rec find i =
      if i + String.length key > String.length content then None
      else if String.sub content i (String.length key) = key then begin
        let j = i + String.length key in
        let k = ref j in
        while
          !k < String.length content
          && (match content.[!k] with '0' .. '9' -> true | _ -> false)
        do
          incr k
        done;
        int_of_string_opt (String.sub content j (!k - j))
      end
      else find (i + 1)
    in
    find 0

let cpu_regression_limit = 1.20

(* ------------------------------------------------------------------ *)
(* Multi-pass script benchmark: later-pass CPU with and without memo   *)
(* ------------------------------------------------------------------ *)

type script_bench_cell = {
  sb_method : string;
  sb_full_on : float;  (* whole fixpoint, memo on (the shipped config) *)
  sb_late_on : float;  (* passes >= 2 only, memo on *)
  sb_late_off : float;  (* passes >= 2 only, memo off *)
  sb_pass_on : int list;  (* per-pass divisions_attempted, memo on *)
  sb_pass_off : int list;
}

(* Later-pass CPU is (full fixpoint) - (the same run capped at one
   pass), measured separately with the memo on and off. Pass 1 always
   attempts every pair; the later passes mostly re-prove quiescence,
   which is exactly the work the memo replays from its table. *)
let script_bench_measure rows =
  let measure meth ~use_memo ~max_passes =
    let once () =
      let cpu = ref 0.0 in
      let agg = Rar_util.Counters.create () in
      List.iter
        (fun row ->
          let net = Suite.build row in
          Synth.Script.run net Synth.Script.script_a;
          let counters = Rar_util.Counters.create () in
          let (), secs =
            Rar_util.Stopwatch.time_cpu (fun () ->
                match meth with
                | `Sis ->
                  ignore
                    (Synth.Resub.run ~use_memo ?max_passes ~counters net)
                | `Ext ->
                  let config =
                    {
                      Booldiv.Substitute.extended_config with
                      use_memo;
                      max_passes =
                        (match max_passes with
                        | Some n -> n
                        | None ->
                          Booldiv.Substitute.extended_config
                            .Booldiv.Substitute.max_passes);
                    }
                  in
                  ignore (Booldiv.Substitute.run ~config ~counters net))
          in
          cpu := !cpu +. secs;
          Rar_util.Counters.accumulate agg counters)
        rows;
      (!cpu, agg.Rar_util.Counters.pass_divisions)
    in
    (* min of two runs: the division counts are deterministic, the CPU
       figure is contention-noisy and feeds a 20% regression gate. *)
    let cpu1, divs = once () in
    let cpu2, _ = once () in
    (Float.min cpu1 cpu2, divs)
  in
  let cell name meth =
    let full_on, pass_on = measure meth ~use_memo:true ~max_passes:None in
    let p1_on, _ = measure meth ~use_memo:true ~max_passes:(Some 1) in
    let full_off, pass_off = measure meth ~use_memo:false ~max_passes:None in
    let p1_off, _ = measure meth ~use_memo:false ~max_passes:(Some 1) in
    {
      sb_method = name;
      sb_full_on = full_on;
      sb_late_on = Float.max 0.0 (full_on -. p1_on);
      sb_late_off = Float.max 0.0 (full_off -. p1_off);
      sb_pass_on = pass_on;
      sb_pass_off = pass_off;
    }
  in
  [ cell "sis" `Sis; cell "ext" `Ext ]

(* Keys deliberately avoid the "cpu_seconds" substring (see the totals
   parser above); "full_fixpoint_seconds" has its own regression parser. *)
let script_bench_json cells =
  let ints l = String.concat ", " (List.map string_of_int l) in
  let cell c =
    Printf.sprintf
      "{\"method\": %S, \"full_fixpoint_seconds\": %.6f, \
       \"late_pass_seconds\": {\"with_memo\": %.6f, \"without_memo\": \
       %.6f}, \"late_pass_reduction_pct\": %.1f, \"pass_divisions\": \
       {\"with_memo\": [%s], \"without_memo\": [%s]}}"
      c.sb_method c.sb_full_on c.sb_late_on c.sb_late_off
      (if c.sb_late_off > 0.0 then
         (1.0 -. (c.sb_late_on /. c.sb_late_off)) *. 100.0
       else 0.0)
      (ints c.sb_pass_on) (ints c.sb_pass_off)
  in
  Printf.sprintf "{\"script\": \"a\", \"methods\": [%s]}"
    (String.concat ", " (List.map cell cells))

let print_script_bench cells =
  Printf.printf "multi-pass script benchmark (script A, quiescence passes):\n";
  List.iter
    (fun c ->
      Printf.printf
        "  %-4s passes >=2: %.3fs memo / %.3fs no-memo (%.0f%% less cpu)  \
         divisions %s -> %s\n"
        c.sb_method c.sb_late_on c.sb_late_off
        (if c.sb_late_off > 0.0 then
           (1.0 -. (c.sb_late_on /. c.sb_late_off)) *. 100.0
         else 0.0)
        ("[" ^ String.concat ", " (List.map string_of_int c.sb_pass_off) ^ "]")
        ("[" ^ String.concat ", " (List.map string_of_int c.sb_pass_on) ^ "]"))
    cells

(* ------------------------------------------------------------------ *)
(* Late-pass wall-clock scaling across job counts                      *)
(* ------------------------------------------------------------------ *)

type scaling_cell = { sc_jobs : int; sc_wall : float }

let scaling_jobs = [ 1; 2; 4; 8 ]

(* The quantity the region scheduler targets: wall-clock of the
   quiescence passes (full fixpoint minus the same run capped at one
   pass) of both drivers, at each job count. Late passes commit little
   or nothing, so their whole-dividend scans parallelise without
   re-rounds; pass 1 is commit-heavy and stays near-sequential. *)
let scaling_measure rows =
  let late_wall jobs =
    let once max_passes =
      let wall = ref 0.0 in
      List.iter
        (fun row ->
          let net = Suite.build row in
          Synth.Script.run net Synth.Script.script_a;
          let time f =
            let (), span = Rar_util.Stopwatch.time_span f in
            wall := !wall +. span.Rar_util.Stopwatch.wall_seconds
          in
          time (fun () ->
              ignore
                (Synth.Resub.run ~jobs ?max_passes (Network.copy net)));
          time (fun () ->
              let config =
                {
                  Booldiv.Substitute.extended_config with
                  jobs;
                  max_passes =
                    (match max_passes with
                    | Some n -> n
                    | None ->
                      Booldiv.Substitute.extended_config
                        .Booldiv.Substitute.max_passes);
                }
              in
              ignore (Booldiv.Substitute.run ~config (Network.copy net))))
        rows;
      !wall
    in
    let late () = Float.max 0.0 (once None -. once (Some 1)) in
    (* min of two: wall clock is the noisiest figure we record. *)
    let a = late () in
    let b = late () in
    Float.min a b
  in
  List.map (fun j -> { sc_jobs = j; sc_wall = late_wall j }) scaling_jobs

let scaling_speedup cells =
  let base = (List.find (fun c -> c.sc_jobs = 1) cells).sc_wall in
  List.map
    (fun c -> (c, if c.sc_wall > 0.0 then base /. c.sc_wall else 0.0))
    cells

(* Key names avoid the "cpu_seconds" / "wall_seconds" /
   "full_fixpoint_seconds" substrings the regression parsers scan for. *)
let scaling_json cells =
  let cores = Domain.recommended_domain_count () in
  Printf.sprintf "{\"host_cores\": %d, \"cells\": [%s]}" cores
    (String.concat ", "
       (List.map
          (fun (c, speedup) ->
            (* Oversubscribed cells measure scheduling luck, not the
               scheduler: flag them so downstream diffs don't gate on
               their wall-clock figures. *)
            Printf.sprintf
              "{\"jobs\": %d, \"late_pass_wall\": %.6f, \"speedup\": \
               %.2f%s}"
              c.sc_jobs c.sc_wall speedup
              (if c.sc_jobs > cores then ", \"advisory\": true" else ""))
          (scaling_speedup cells)))

let print_scaling cells =
  let cores = Domain.recommended_domain_count () in
  Printf.printf "late-pass wall-clock scaling (%d host core(s)):\n" cores;
  List.iter
    (fun (c, speedup) ->
      Printf.printf "  jobs=%d  %.3fs wall  speedup %.2fx\n" c.sc_jobs
        c.sc_wall speedup)
    (scaling_speedup cells);
  if cores < 2 then
    Printf.printf
      "  single-core host: speedup figures are advisory (determinism \
       still gated)\n"

(* The previous snapshot's summed script-benchmark fixpoint CPU: the
   "full_fixpoint_seconds" key appears only in the script_bench record. *)
let previous_script_cpu path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let content =
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let key = "\"full_fixpoint_seconds\": " in
    let sum = ref 0.0 and found = ref false in
    let rec scan i =
      if i + String.length key > String.length content then ()
      else if String.sub content i (String.length key) = key then begin
        let j = i + String.length key in
        let k = ref j in
        while
          !k < String.length content
          && (match content.[!k] with
             | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
             | _ -> false)
        do
          incr k
        done;
        (match float_of_string_opt (String.sub content j (!k - j)) with
        | Some v ->
          sum := !sum +. v;
          found := true
        | None -> ());
        scan !k
      end
      else scan (i + 1)
    in
    scan 0;
    if !found then Some !sum else None

(* ------------------------------------------------------------------ *)
(* DC-rich fixture shared by dccheck and the bench snapshot            *)
(* ------------------------------------------------------------------ *)

(* Every node carries cubes that are live only on input patterns the
   [.exdc] cover forbids (a=b=1 and c=d=1 never occur), so a DC-aware
   run can delete them while a DC-blind run must keep every one.
   Parsed from text so the gate also exercises the [.exdc] reader. *)
let dc_fixture_text =
  ".model dcrich\n\
   .inputs a b c d e\n\
   .outputs f g h\n\
   .names a b c d f\n\
   1111 1\n\
   1100 1\n\
   0011 1\n\
   0110 1\n\
   .names c d e g\n\
   111 1\n\
   110 1\n\
   001 1\n\
   .names a b e h\n\
   11- 1\n\
   001 1\n\
   .exdc\n\
   .names a b c d excdc\n\
   11-- 1\n\
   --11 1\n\
   .end\n"

let dc_fixture () = Logic_network.Blif.parse_dc dc_fixture_text

(* Minimum factored literals the DC-aware run must save over the
   DC-blind one on the fixture, per Boolean method. *)
let dc_fixture_floor = [ ("basic", 4); ("ext", 4); ("ext-gdc", 4) ]

(* One (method, plain literals, DC literals, verified modulo DC) row of
   the fixture — shared by the dccheck gate and the bench snapshot
   record. *)
let dc_fixture_cells () =
  let net, dc = dc_fixture () in
  List.map
    (fun (name, meth) ->
      let plain = Network.copy net in
      Synth.Script.run plain Synth.Script.script_a;
      Synth.Script.resub_command meth plain;
      let dcrun = Network.copy net in
      Synth.Script.run dcrun Synth.Script.script_a;
      Synth.Script.resub_command ~dc meth dcrun;
      let verified =
        match Equiv.check_dc dc dcrun net with
        | Equiv.Equivalent -> true
        | Equiv.Counterexample _ -> false
      in
      (name, Lit_count.factored plain, Lit_count.factored dcrun, verified))
    Synth.Script.resub_methods

(* The bench snapshot's "dc" record. Key names avoid the "cpu_seconds" /
   "wall_seconds" substrings the regression parsers scan for. *)
let dc_json () =
  Printf.sprintf "{\"fixture\": \"dcrich\", \"methods\": [%s]}"
    (String.concat ", "
       (List.map
          (fun (name, plain, with_dc, verified) ->
            Printf.sprintf
              "{\"method\": %S, \"plain_literals\": %d, \"dc_literals\": \
               %d, \"verified_modulo_dc\": %b}"
              name plain with_dc verified)
          (dc_fixture_cells ())))

(* Emits one JSON record per (circuit, method) cell plus per-method
   totals: factored literals, CPU and wall seconds, verification status,
   and the divisor-filter counters, so successive PRs can diff resub
   timing and filtered-pair counts mechanically. The "cpu_seconds" field
   is genuine processor time ([Sys.time]); "wall_seconds" is the
   elapsed-clock figure the label used to (mis)report. The regression
   gate compares cpu_seconds, the load-insensitive one. At [jobs = 1] the
   run is gated against the previous snapshot: >20% total-CPU regression
   fails. *)
let bench_json ?(path = "BENCH_resub.json") ?(jobs = 1) ?sim_seed ?sim_words
    rows =
  section "bench - machine-readable resub snapshot";
  let baseline_cpu = if jobs = 1 then previous_total_cpu path else None in
  let baseline_script = if jobs = 1 then previous_script_cpu path else None in
  (* Parallel runs are gated on wall clock, the figure parallelism
     actually improves — CPU time charges every domain and would punish
     speculation. Only comparable against a snapshot at the same job
     count. *)
  let baseline_wall =
    if jobs > 1 && previous_jobs path = Some jobs then
      previous_total_wall path
    else None
  in
  let cubeops = cubeops_measure () in
  print_cubeops cubeops;
  let script_cells = script_bench_measure rows in
  print_script_bench script_cells;
  let scaling_cells = scaling_measure rows in
  print_scaling scaling_cells;
  let cells =
    List.map
      (fun row ->
        let net = Suite.build row in
        Synth.Script.run net Synth.Script.script_a;
        let init = Lit_count.factored net in
        let per_method =
          List.map
            (fun (name, meth) ->
              let scratch = Network.copy net in
              let counters = Rar_util.Counters.create () in
              let (), span =
                Rar_util.Stopwatch.time_span (fun () ->
                    Synth.Script.resub_command ~jobs ?sim_seed ?sim_words
                      ~counters meth scratch)
              in
              let lits = Lit_count.factored scratch in
              let ok = Equiv.equivalent scratch net in
              Printf.printf "  %-12s %-8s %4d lits  %.2fs cpu  %.2fs wall  %s\n"
                row.Suite.name name lits
                span.Rar_util.Stopwatch.cpu_seconds
                span.Rar_util.Stopwatch.wall_seconds
                (if ok then "ok" else "FAIL");
              (name, lits, span, ok, counters))
            Synth.Script.resub_methods
        in
        (row.Suite.name, init, per_method))
      rows
  in
  let method_names = List.map fst Synth.Script.resub_methods in
  let totals =
    List.map
      (fun name ->
        let lits = ref 0 and cpu = ref 0.0 and wall = ref 0.0 and ok = ref true in
        let counters = Rar_util.Counters.create () in
        List.iter
          (fun (_, _, per_method) ->
            List.iter
              (fun (n, l, (s : Rar_util.Stopwatch.span), o, k) ->
                if n = name then begin
                  lits := !lits + l;
                  cpu := !cpu +. s.Rar_util.Stopwatch.cpu_seconds;
                  wall := !wall +. s.Rar_util.Stopwatch.wall_seconds;
                  if not o then ok := false;
                  Rar_util.Counters.accumulate counters k
                end)
              per_method)
          cells;
        ( name,
          !lits,
          {
            Rar_util.Stopwatch.cpu_seconds = !cpu;
            Rar_util.Stopwatch.wall_seconds = !wall;
          },
          !ok,
          counters ))
      method_names
  in
  let buffer = Buffer.create 4096 in
  let cell_json (name, lits, (span : Rar_util.Stopwatch.span), ok, counters) =
    Printf.sprintf
      "{\"method\": %S, \"literals\": %d, \"cpu_seconds\": %.6f, \
       \"wall_seconds\": %.6f, \"verified\": %b, \"counters\": %s}"
      name lits span.Rar_util.Stopwatch.cpu_seconds
      span.Rar_util.Stopwatch.wall_seconds ok
      (Rar_util.Counters.to_json counters)
  in
  Buffer.add_string buffer
    (Printf.sprintf "{\n  \"jobs\": %d,\n  \"sim_words\": %d,\n" jobs
       (Option.value sim_words
          ~default:Logic_sim.Signature.default_words));
  (* The cubeops and dc records must precede the "totals" marker: the
     regression parser above sums every "cpu_seconds" after it, and
     these figures deliberately use different key names. *)
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"cubeops\": %s,\n  \"script_bench\": %s,\n  \"scaling\": %s,\n  \
        \"dc\": %s,\n  \"circuits\": [\n"
       (cubeops_json cubeops)
       (script_bench_json script_cells)
       (scaling_json scaling_cells)
       (dc_json ()));
  List.iteri
    (fun i (circuit, init, per_method) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"circuit\": %S, \"initial_literals\": %d, \"methods\": [%s]}%s\n"
           circuit init
           (String.concat ", " (List.map cell_json per_method))
           (if i < List.length cells - 1 then "," else "")))
    cells;
  Buffer.add_string buffer "  ],\n  \"totals\": [\n";
  List.iteri
    (fun i total ->
      Buffer.add_string buffer
        (Printf.sprintf "    %s%s\n" (cell_json total)
           (if i < List.length totals - 1 then "," else "")))
    totals;
  Buffer.add_string buffer "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buffer);
  close_out oc;
  Printf.printf "\nwrote %s (%d circuits x %d methods, jobs=%d)\n" path
    (List.length cells) (List.length method_names) jobs;
  List.iter
    (fun (name, lits, (span : Rar_util.Stopwatch.span), ok, counters) ->
      Printf.printf "  %-8s %5d lits  %6.2fs cpu  %6.2fs wall  %s  [%s]\n" name
        lits span.Rar_util.Stopwatch.cpu_seconds
        span.Rar_util.Stopwatch.wall_seconds
        (if ok then "ok" else "FAIL")
        (Rar_util.Counters.to_string counters))
    totals;
  let new_cpu =
    List.fold_left
      (fun acc (_, _, (s : Rar_util.Stopwatch.span), _, _) ->
        acc +. s.Rar_util.Stopwatch.cpu_seconds)
      0.0 totals
  in
  (match baseline_cpu with
  | None -> ()
  | Some old_cpu ->
    Printf.printf "total cpu: %.2fs (previous snapshot: %.2fs)\n" new_cpu
      old_cpu;
    if old_cpu > 0.0 && new_cpu > old_cpu *. cpu_regression_limit then begin
      Printf.printf
        "PERF REGRESSION: total cpu_seconds grew by more than %.0f%%\n"
        ((cpu_regression_limit -. 1.0) *. 100.0);
      exit 3
    end);
  (match baseline_wall with
  | None -> ()
  | Some old_wall ->
    let new_wall =
      List.fold_left
        (fun acc (_, _, (s : Rar_util.Stopwatch.span), _, _) ->
          acc +. s.Rar_util.Stopwatch.wall_seconds)
        0.0 totals
    in
    Printf.printf "total wall: %.2fs (previous jobs=%d snapshot: %.2fs)\n"
      new_wall jobs old_wall;
    if old_wall > 0.0 && new_wall > old_wall *. cpu_regression_limit
    then begin
      Printf.printf
        "PERF REGRESSION: total wall_seconds grew by more than %.0f%% at \
         jobs=%d\n"
        ((cpu_regression_limit -. 1.0) *. 100.0)
        jobs;
      exit 3
    end);
  let script_cpu =
    List.fold_left (fun acc c -> acc +. c.sb_full_on) 0.0 script_cells
  in
  match baseline_script with
  | None -> ()
  | Some old_cpu ->
    Printf.printf "script bench cpu: %.2fs (previous snapshot: %.2fs)\n"
      script_cpu old_cpu;
    if old_cpu > 0.0 && script_cpu > old_cpu *. cpu_regression_limit then begin
      Printf.printf
        "PERF REGRESSION: multi-pass script benchmark cpu grew by more \
         than %.0f%%\n"
        ((cpu_regression_limit -. 1.0) *. 100.0);
      exit 3
    end

(* ------------------------------------------------------------------ *)
(* jobscheck - parallel runs must be bit-identical to sequential ones   *)
(* ------------------------------------------------------------------ *)

let jobs_check rows =
  let jmax = max 4 (Rar_util.Pool.default_jobs ()) in
  section
    (Printf.sprintf "jobscheck - jobs=1 vs jobs=%d determinism gate" jmax);
  let failures = ref 0 in
  let totals_seq = ref 0 and totals_par = ref 0 in
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net Synth.Script.script_a;
      List.iter
        (fun (name, meth) ->
          let seq = Network.copy net and par = Network.copy net in
          let (), cpu_seq =
            Rar_util.Stopwatch.time (fun () ->
                Synth.Script.resub_command ~jobs:1 meth seq)
          in
          let (), cpu_par =
            Rar_util.Stopwatch.time (fun () ->
                Synth.Script.resub_command ~jobs:jmax meth par)
          in
          let lits_seq = Lit_count.factored seq in
          let lits_par = Lit_count.factored par in
          let identical =
            lits_seq = lits_par
            && Network.to_string seq = Network.to_string par
          in
          let ok = Equiv.equivalent par net in
          totals_seq := !totals_seq + lits_seq;
          totals_par := !totals_par + lits_par;
          if not (identical && ok) then incr failures;
          Printf.printf
            "  %-12s %-8s seq %4d lits %6.2fs | par %4d lits %6.2fs  %s\n"
            row.Suite.name name lits_seq cpu_seq lits_par cpu_par
            (if identical && ok then "identical"
             else if not identical then "DIFFERS"
             else "NOT EQUIVALENT");
          ignore cpu_seq)
        Synth.Script.resub_methods)
    rows;
  Printf.printf "literal totals: jobs=1 %d, jobs=%d %d\n" !totals_seq jmax
    !totals_par;
  if !failures > 0 then begin
    Printf.printf "jobscheck: %d cell(s) FAILED the determinism gate\n"
      !failures;
    exit 4
  end
  else
    Printf.printf
      "jobscheck: all cells bit-identical and equivalence-checked\n"

(* ------------------------------------------------------------------ *)
(* shardcheck - jobs x memo grid must leave no byte behind             *)
(* ------------------------------------------------------------------ *)

(* The quick-suite per-method factored-literal totals after Script A.
   These are the seed's sequential figures; any drift means the region
   scheduler (or the shared memo under it) changed a result. *)
let expected_quick_totals =
  [ ("sis", 245); ("basic", 241); ("ext", 239); ("ext-gdc", 235) ]

(* Stronger grid than jobscheck: every (circuit, method) cell is run at
   jobs in {1, 2, 8} with the division memo on and off, and all six
   networks must be byte-identical to the jobs=1 memo-on reference. On
   the quick suite the per-method literal totals are additionally
   pinned to the known-good figures above. *)
let shard_check ~pinned rows =
  section "shardcheck - totals gate across jobs {1,2,8} x memo {on,off}";
  let grid =
    [ (1, false); (2, true); (2, false); (8, true); (8, false) ]
  in
  let failures = ref 0 in
  let totals = Hashtbl.create 7 in
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net Synth.Script.script_a;
      List.iter
        (fun (name, meth) ->
          let reference = Network.copy net in
          Synth.Script.resub_command ~jobs:1 ~use_memo:true meth reference;
          let ref_str = Network.to_string reference in
          let lits = Lit_count.factored reference in
          Hashtbl.replace totals name
            ((try Hashtbl.find totals name with Not_found -> 0) + lits);
          let diverged =
            List.filter
              (fun (jobs, use_memo) ->
                let scratch = Network.copy net in
                Synth.Script.resub_command ~jobs ~use_memo meth scratch;
                Network.to_string scratch <> ref_str)
              grid
          in
          if diverged <> [] then begin
            incr failures;
            List.iter
              (fun (jobs, use_memo) ->
                Printf.printf "  %-12s %-8s DIVERGES at jobs=%d memo=%b\n"
                  row.Suite.name name jobs use_memo)
              diverged
          end
          else
            Printf.printf "  %-12s %-8s %4d lits  identical across grid\n"
              row.Suite.name name lits)
        Synth.Script.resub_methods)
    rows;
  if pinned then
    List.iter
      (fun (name, expect) ->
        let got = try Hashtbl.find totals name with Not_found -> 0 in
        Printf.printf "  total %-8s %4d lits (expected %d)\n" name got
          expect;
        if got <> expect then incr failures)
      expected_quick_totals;
  if !failures > 0 then begin
    Printf.printf "shardcheck: %d cell(s) FAILED\n" !failures;
    exit 7
  end
  else
    Printf.printf
      "shardcheck: every cell byte-identical across the jobs x memo grid\n"

(* ------------------------------------------------------------------ *)
(* tracecheck - degraded runs must complete and trace valid JSON lines *)
(* ------------------------------------------------------------------ *)

let trace_check rows =
  section "tracecheck - degraded-run completion + trace JSON-lines lint";
  let path = Filename.temp_file "rarsub_trace" ".jsonl" in
  let failures = ref 0 in
  let counters = Rar_util.Counters.create () in
  let trace = Rar_util.Trace.to_file path in
  (* A tiny per-unit fault budget forces nearly every division to exhaust
     mid-removal: the run must still complete, every result must stay
     equivalent (degradation only weakens the optimisation), and each
     cut-short unit must be visible in the trace. *)
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net Synth.Script.script_a;
      let scratch = Network.copy net in
      Synth.Script.resub_command ~fault_fuel:5 ~trace ~counters
        Synth.Script.Ext scratch;
      let ok = Equiv.equivalent scratch net in
      if not ok then incr failures;
      Printf.printf "  %-12s degraded run %s\n" row.Suite.name
        (if ok then "equivalent" else "NOT EQUIVALENT"))
    rows;
  Rar_util.Trace.close trace;
  let lines = ref 0 and bad = ref 0 and degrade_events = ref 0 in
  let memo_events = ref 0 and checkpoint_events = ref 0 in
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       (match Rar_util.Trace.lint line with
       | Ok () -> ()
       | Error msg ->
         incr bad;
         if !bad <= 5 then Printf.printf "  line %d: %s\n" !lines msg);
       if starts_with "{\"event\": \"degrade\"," line then
         incr degrade_events;
       if starts_with "{\"event\": \"memo\"," line then incr memo_events;
       if starts_with "{\"event\": \"checkpoint\"," line then
         incr checkpoint_events
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Printf.printf
    "trace: %d line(s), %d malformed, %d degrade, %d memo, %d checkpoint \
     event(s)\n"
    !lines !bad !degrade_events !memo_events !checkpoint_events;
  Printf.printf "degradations tallied in counters: %d\n"
    (Atomic.get counters.Rar_util.Counters.degradations);
  if
    !bad > 0 || !failures > 0 || !degrade_events = 0
    || Atomic.get counters.Rar_util.Counters.degradations = 0
    || !memo_events = 0 || !checkpoint_events = 0
  then begin
    Printf.printf "tracecheck FAILED\n";
    exit 5
  end
  else
    Printf.printf
      "tracecheck: degraded runs equivalent, trace well-formed, \
       degradations, memo and checkpoint passes recorded\n"

(* ------------------------------------------------------------------ *)
(* memocheck - division memo must be invisible in results              *)
(* ------------------------------------------------------------------ *)

(* The memo may skip a division attempt only when the recorded failure
   is provably a replay, so memo-on and memo-off runs must produce
   byte-identical networks. Gate: every (circuit, method) cell matches,
   the memo-on sweep actually skipped work somewhere (memo_hits > 0),
   and the memo-off sweep never ticked the memo counters. *)
let memo_check rows =
  section "memocheck - memo-on vs --no-memo bit-identity gate";
  let failures = ref 0 in
  let hits_on = ref 0 and hits_off = ref 0 and misses_off = ref 0 in
  List.iter
    (fun row ->
      let base = Suite.build row in
      Synth.Script.run base Synth.Script.script_a;
      List.iter
        (fun (name, meth) ->
          let once use_memo =
            let scratch = Network.copy base in
            let counters = Rar_util.Counters.create () in
            Synth.Script.resub_command ~use_memo ~counters meth scratch;
            (scratch, counters)
          in
          let net_on, c_on = once true in
          let net_off, c_off = once false in
          hits_on := !hits_on + Atomic.get c_on.Rar_util.Counters.memo_hits;
          hits_off := !hits_off + Atomic.get c_off.Rar_util.Counters.memo_hits;
          misses_off := !misses_off + Atomic.get c_off.Rar_util.Counters.memo_misses;
          let same =
            Network.to_string net_on = Network.to_string net_off
            && Lit_count.factored net_on = Lit_count.factored net_off
          in
          if not same then incr failures;
          Printf.printf "  %-12s %-8s %4d lits  %s  (%d hits)\n"
            row.Suite.name name
            (Lit_count.factored net_on)
            (if same then "identical" else "DIVERGED")
            (Atomic.get c_on.Rar_util.Counters.memo_hits))
        Synth.Script.resub_methods)
    rows;
  Printf.printf "memo hits: %d with memo, %d without (misses without: %d)\n"
    !hits_on !hits_off !misses_off;
  if !failures > 0 || !hits_on = 0 || !hits_off > 0 || !misses_off > 0
  then begin
    Printf.printf "memocheck FAILED\n";
    exit 6
  end
  else
    Printf.printf
      "memocheck: all cells bit-identical; memo active when on, inert \
       when off\n"

(* ------------------------------------------------------------------ *)
(* dccheck - external don't-care discipline gate                       *)
(* ------------------------------------------------------------------ *)

(* The don't-care discipline, gated:
   1. an {e empty} view is invisible — byte-identical networks across
      the jobs x memo grid against the no-view reference, with the
      quick-suite totals pinned to the shardcheck figures;
   2. a non-empty view is deterministic — the fixture's DC run is
      byte-identical across the same grid;
   3. on the DC-rich fixture every Boolean method meets its improvement
      floor, never regresses, and the result verifies modulo DC. *)
let dc_check ~pinned rows =
  section "dccheck - external don't-care discipline gate";
  let grid = [ (1, false); (2, true); (2, false); (8, true); (8, false) ] in
  let failures = ref 0 in
  let totals = Hashtbl.create 7 in
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net Synth.Script.script_a;
      List.iter
        (fun (name, meth) ->
          let reference = Network.copy net in
          Synth.Script.resub_command ~jobs:1 ~use_memo:true meth reference;
          let ref_str = Network.to_string reference in
          let lits = Lit_count.factored reference in
          Hashtbl.replace totals name
            ((try Hashtbl.find totals name with Not_found -> 0) + lits);
          let diverged =
            List.filter
              (fun (jobs, use_memo) ->
                let scratch = Network.copy net in
                let empty = Logic_network.Dont_care.create () in
                Synth.Script.resub_command ~jobs ~use_memo ~dc:empty meth
                  scratch;
                Network.to_string scratch <> ref_str)
              grid
          in
          if diverged <> [] then begin
            incr failures;
            List.iter
              (fun (jobs, use_memo) ->
                Printf.printf
                  "  %-12s %-8s empty view DIVERGES at jobs=%d memo=%b\n"
                  row.Suite.name name jobs use_memo)
              diverged
          end
          else
            Printf.printf
              "  %-12s %-8s %4d lits  empty view invisible across grid\n"
              row.Suite.name name lits)
        Synth.Script.resub_methods)
    rows;
  if pinned then
    List.iter
      (fun (name, expect) ->
        let got = try Hashtbl.find totals name with Not_found -> 0 in
        Printf.printf "  total %-8s %4d lits (expected %d)\n" name got expect;
        if got <> expect then incr failures)
      expected_quick_totals;
  (* Non-empty view: deterministic across the grid. *)
  let fnet, fdc = dc_fixture () in
  Synth.Script.run fnet Synth.Script.script_a;
  List.iter
    (fun (name, meth) ->
      let reference = Network.copy fnet in
      Synth.Script.resub_command ~jobs:1 ~use_memo:true ~dc:fdc meth
        reference;
      let ref_str = Network.to_string reference in
      let diverged =
        List.filter
          (fun (jobs, use_memo) ->
            let scratch = Network.copy fnet in
            Synth.Script.resub_command ~jobs ~use_memo ~dc:fdc meth scratch;
            Network.to_string scratch <> ref_str)
          grid
      in
      if diverged <> [] then begin
        incr failures;
        List.iter
          (fun (jobs, use_memo) ->
            Printf.printf
              "  dcrich       %-8s DC run DIVERGES at jobs=%d memo=%b\n" name
              jobs use_memo)
          diverged
      end
      else
        Printf.printf "  dcrich       %-8s DC run identical across grid\n"
          name)
    Synth.Script.resub_methods;
  (* DC-rich fixture: improvement floor + verify modulo DC. *)
  List.iter
    (fun (name, plain, with_dc, verified) ->
      let floor = Option.value ~default:0 (List.assoc_opt name dc_fixture_floor) in
      let ok = with_dc <= plain - floor && verified in
      Printf.printf
        "  dcrich       %-8s %4d -> %4d lits (floor %d)  verify-modulo-DC \
         %s  %s\n"
        name plain with_dc floor
        (if verified then "pass" else "FAIL")
        (if ok then "ok" else "FAIL");
      if not ok then incr failures)
    (dc_fixture_cells ());
  if !failures > 0 then begin
    Printf.printf "dccheck: %d check(s) FAILED\n" !failures;
    exit 8
  end
  else
    Printf.printf
      "dccheck: empty views invisible, DC runs deterministic, fixture \
       floors met\n"

(* ------------------------------------------------------------------ *)
(* kcheck - constructive k-resubstitution gate                         *)
(* ------------------------------------------------------------------ *)

(* The resub-k quick-suite literal ceiling: the constructive driver
   must do at least as well as extended division (the "ext" column of
   [expected_quick_totals]). *)
let kresub_quick_floor = 239

(* Gates for the constructive k-resub driver:
   1. every method's jobs=1 memo-on result is verified with the BDD
      oracle ({!Robdd.Of_network.equivalent}) — an exact check,
      independent of the random-simulation [Equiv] the other gates use,
      so every committed substitution is proven, not sampled;
   2. on the quick suite the four existing methods stay pinned to the
      shardcheck totals and resub-k's total meets the ext floor;
   3. resub-k is byte-identical across jobs {1,2,8} x memo {on,off};
   4. resub-k's candidate-construction CPU stays below ext's division
      CPU (exact validation is accounted separately — it replaces the
      per-candidate division work the signatures used to gate). *)
let k_check ~pinned rows =
  section "kcheck - constructive k-resub: BDD verify + identity + floor";
  let grid = [ (1, false); (2, true); (2, false); (8, true); (8, false) ] in
  let failures = ref 0 in
  let totals = Hashtbl.create 7 in
  let construct_cpu = ref 0.0 and validate_cpu = ref 0.0 in
  let ext_division = ref 0.0 in
  List.iter
    (fun row ->
      let net = Suite.build row in
      Synth.Script.run net Synth.Script.script_a;
      List.iter
        (fun (name, meth) ->
          let reference = Network.copy net in
          let counters = Rar_util.Counters.create () in
          Synth.Script.resub_command ~jobs:1 ~use_memo:true ~counters meth
            reference;
          let lits = Lit_count.factored reference in
          Hashtbl.replace totals name
            ((try Hashtbl.find totals name with Not_found -> 0) + lits);
          (match meth with
          | Synth.Script.Ext ->
            ext_division :=
              !ext_division
              +. Atomic.get counters.Rar_util.Counters.division_seconds
          | Synth.Script.Kresub ->
            construct_cpu :=
              !construct_cpu
              +. Atomic.get counters.Rar_util.Counters.filter_seconds;
            validate_cpu :=
              !validate_cpu
              +. Atomic.get counters.Rar_util.Counters.validation_seconds
          | Synth.Script.Algebraic | Synth.Script.Basic
          | Synth.Script.Ext_gdc ->
            ());
          let bdd_ok = Robdd.Of_network.equivalent reference net in
          if not bdd_ok then incr failures;
          let grid_ok =
            match meth with
            | Synth.Script.Kresub ->
              let ref_str = Network.to_string reference in
              List.for_all
                (fun (jobs, use_memo) ->
                  let scratch = Network.copy net in
                  Synth.Script.resub_command ~jobs ~use_memo meth scratch;
                  String.equal (Network.to_string scratch) ref_str)
                grid
            | Synth.Script.Algebraic | Synth.Script.Basic | Synth.Script.Ext
            | Synth.Script.Ext_gdc ->
              true
          in
          if not grid_ok then incr failures;
          Printf.printf "  %-12s %-8s %4d lits  BDD %s%s\n" row.Suite.name
            name lits
            (if bdd_ok then "ok" else "FAIL")
            (match meth with
            | Synth.Script.Kresub ->
              if grid_ok then "  identical across jobs x memo grid"
              else "  DIVERGES across grid"
            | Synth.Script.Algebraic | Synth.Script.Basic | Synth.Script.Ext
            | Synth.Script.Ext_gdc ->
              ""))
        Synth.Script.resub_methods)
    rows;
  if pinned then begin
    List.iter
      (fun (name, expect) ->
        let got = try Hashtbl.find totals name with Not_found -> 0 in
        Printf.printf "  total %-8s %4d lits (expected %d)\n" name got
          expect;
        if got <> expect then incr failures)
      expected_quick_totals;
    let got_k = try Hashtbl.find totals "resub-k" with Not_found -> 0 in
    Printf.printf "  total %-8s %4d lits (floor: <= %d, the ext total)\n"
      "resub-k" got_k kresub_quick_floor;
    if got_k > kresub_quick_floor then incr failures
  end;
  Printf.printf
    "  cpu: resub-k construction %.3fs + validation %.3fs | ext division \
     %.3fs\n"
    !construct_cpu !validate_cpu !ext_division;
  if !ext_division > 0.0 && !construct_cpu >= !ext_division then begin
    Printf.printf
      "  resub-k candidate construction is not cheaper than ext division\n";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.printf "kcheck: %d check(s) FAILED\n" !failures;
    exit 10
  end
  else
    Printf.printf
      "kcheck: BDD-verified, byte-identical across the grid, floor met\n"

(* ------------------------------------------------------------------ *)
(* Bechamel benches - one per table                                    *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "Bechamel timing benches (one per table, on the 'b9' circuit)";
  let open Bechamel in
  let prepared script =
    let row = Option.get (Suite.find "b9") in
    let net = Suite.build row in
    Synth.Script.run net script;
    net
  in
  let base_a = prepared Synth.Script.script_a in
  let base_b = prepared Synth.Script.script_b in
  let base_c = prepared Synth.Script.script_c in
  let bench_table name base =
    Test.make ~name
      (Staged.stage (fun () ->
           List.iter (fun (_, cmd) -> cmd (Network.copy base)) methods))
  in
  let row = Option.get (Suite.find "b9") in
  let original = Suite.build row in
  let tests =
    [
      bench_table "table2(scriptA)" base_a;
      bench_table "table3(scriptB)" base_b;
      bench_table "table4(scriptC)" base_c;
      Test.make ~name:"table5(script.algebraic)"
        (Staged.stage (fun () ->
             List.iter
               (fun (_, resub) ->
                 let scratch = Network.copy original in
                 Synth.Script.run ~resub scratch Synth.Script.script_algebraic)
               methods));
      Test.make ~name:"table1(vote collection)"
        (Staged.stage (fun () ->
             let net = extended_example () in
             let f = Builder.node net "f" and d = Builder.node net "D" in
             ignore (Booldiv.Vote.collect net ~f ~pool:[ d ])));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"tables" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "  %-32s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* service - resident-daemon gate and throughput/latency snapshot      *)
(* ------------------------------------------------------------------ *)

module Protocol = Rar_service.Protocol
module Server = Rar_service.Server

(* One request per quick (circuit, method) cell, script A — the same
   shape as the comparison tables, so cold latencies line up with the
   familiar per-cell costs. *)
let service_workload rows =
  List.concat_map
    (fun row ->
      let blif = Logic_network.Blif.to_string (Suite.build row) in
      List.map
        (fun meth ->
          ( Printf.sprintf "%s/%s" row.Suite.name meth,
            { (Protocol.default_request ~blif) with Protocol.meth } ))
        [ "resub"; "ext" ])
    rows

let service_socket () =
  let path = Filename.temp_file "rarsubd" ".sock" in
  Sys.remove path;
  path

(* The CI gate: a scripted miss/hit sequence against a live daemon.
   Every response must be byte-identical to [Job.run_cold] (the exact
   code a cold CLI run executes), the hit/miss flags and cache counters
   must match the script, and a malformed or oversized frame must get a
   clean refusal without taking the daemon down. *)
let service_check rows =
  section "servicecheck - daemon miss/hit sequence vs cold references";
  let socket = service_socket () in
  let workload = service_workload rows in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; Printf.printf "  FAILED %s\n" m) fmt in
  let trace_path = Filename.temp_file "rarsubd" ".trace" in
  let trace = Rar_util.Trace.to_file trace_path in
  let config =
    { (Server.default_config ~socket_path:socket) with Server.trace }
  in
  Server.with_server config (fun server ->
      List.iter
        (fun (label, request) ->
          let reference =
            match Rar_service.Job.run_cold request with
            | Ok entry -> entry.Rar_service.Cache.blif
            | Error m -> failwith m
          in
          let submit request expect_hit tag =
            match Server.Client.round_trip ~timeout:120.0 ~socket request with
            | Protocol.Refused m -> fail "%s %s: refused: %s" label tag m
            | Protocol.Result { blif; cache_hit; _ } ->
              if not (String.equal blif reference) then
                fail "%s %s: bytes differ from the cold run" label tag;
              if cache_hit <> expect_hit then
                fail "%s %s: cache_hit=%b, expected %b" label tag cache_hit
                  expect_hit
          in
          submit request false "miss";
          submit request true "hit";
          submit
            { request with Protocol.use_cache = false }
            false "bypass";
          Printf.printf "  %-24s miss/hit/bypass byte-identical\n" label)
        workload;
      (* Framing abuse: a garbage frame and an oversized frame must each
         draw a clean [Refused] reply, and the daemon must keep serving. *)
      let raw_connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        fd
      in
      let expect_refusal tag send =
        let fd = raw_connect () in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            send fd;
            match Protocol.read_frame fd with
            | None -> fail "%s: connection closed with no reply" tag
            | Some payload -> (
              match Protocol.decode_response payload with
              | Ok (Protocol.Refused _) ->
                Printf.printf "  %-24s cleanly refused\n" tag
              | Ok (Protocol.Result _) -> fail "%s: accepted!" tag
              | Error m -> fail "%s: unreadable reply: %s" tag m))
      in
      expect_refusal "garbage frame" (fun fd ->
          Protocol.write_frame fd "not a rarsub frame at all");
      expect_refusal "oversized frame" (fun fd ->
          let header = Bytes.create 4 in
          let len = Protocol.default_max_frame + 1 in
          Bytes.set header 0 (Char.chr ((len lsr 24) land 0xff));
          Bytes.set header 1 (Char.chr ((len lsr 16) land 0xff));
          Bytes.set header 2 (Char.chr ((len lsr 8) land 0xff));
          Bytes.set header 3 (Char.chr (len land 0xff));
          ignore (Unix.write fd header 0 4));
      (* Still alive after the abuse? *)
      (match workload with
      | (label, request) :: _ -> (
        match Server.Client.round_trip ~timeout:120.0 ~socket request with
        | Protocol.Result { cache_hit = true; _ } ->
          Printf.printf "  daemon still serving (hit on %s)\n" label
        | Protocol.Result _ -> fail "post-abuse %s: expected a cache hit" label
        | Protocol.Refused m -> fail "post-abuse %s: refused: %s" label m)
      | [] -> ());
      let n = List.length workload in
      let stats = Server.stats server in
      (match stats.Server.cache with
      | None -> fail "cache disabled in servicecheck config"
      | Some c ->
        (* n misses, then n hits, (bypasses touch no counter), plus the
           post-abuse hit. *)
        if c.Rar_service.Cache.hits <> n + 1 || c.Rar_service.Cache.misses <> n
        then
          fail "cache counters hits=%d misses=%d, expected %d/%d"
            c.Rar_service.Cache.hits c.Rar_service.Cache.misses (n + 1) n
        else
          Printf.printf "  cache counters: %d hits, %d misses, %d insertions\n"
            c.Rar_service.Cache.hits c.Rar_service.Cache.misses
            c.Rar_service.Cache.insertions));
  (* The trace file must lint line by line and reconstruct a complete
     timeline per job id: job_queued, then (for cached jobs) exactly one
     cache_hit or cache_miss, then job_done. *)
  Rar_util.Trace.close trace;
  let timelines = Hashtbl.create 64 in
  let ic = open_in trace_path in
  (try
     while true do
       let line = input_line ic in
       match Rar_util.Trace.fields_of_line line with
       | None -> fail "trace line does not lint: %s" line
       | Some fields -> (
         match (List.assoc_opt "event" fields, List.assoc_opt "job" fields) with
         | Some (`String event), Some (`Int job) ->
           Hashtbl.replace timelines job
             (event :: (try Hashtbl.find timelines job with Not_found -> []))
         | _ -> ())
     done
   with End_of_file -> close_in ic);
  Sys.remove trace_path;
  let n = List.length workload in
  (* 3n submissions + the post-abuse probe, job ids 0 .. 3n. *)
  let expected_jobs = (3 * n) + 1 in
  if Hashtbl.length timelines <> expected_jobs then
    fail "trace covers %d job ids, expected %d" (Hashtbl.length timelines)
      expected_jobs;
  Hashtbl.iter
    (fun job events ->
      match List.rev events with
      | "job_queued" :: middle ->
        (match List.rev middle with
        | "job_done" :: cache_events -> (
          match cache_events with
          | [] | [ "cache_hit" ] | [ "cache_miss" ] -> ()
          | _ ->
            fail "job %d: unexpected cache events %s" job
              (String.concat "," cache_events))
        | _ -> fail "job %d: timeline does not end with job_done" job)
      | _ -> fail "job %d: timeline does not start with job_queued" job)
    timelines;
  if !failures = 0 then
    Printf.printf "  trace: %d per-job timelines complete and linted\n"
      (Hashtbl.length timelines);
  if !failures > 0 then begin
    Printf.printf "servicecheck: %d check(s) FAILED\n" !failures;
    exit 8
  end
  else Printf.printf "servicecheck: every response byte-identical, counters exact\n"

(* The throughput/latency snapshot: a cold pass (fresh daemon, every
   job a miss) then [clients] concurrent connections replaying the same
   workload [rounds] times (every job a hit). Writes BENCH_service.json. *)
let service_bench ?(clients = 8) ?(rounds = 5) rows =
  section
    (Printf.sprintf "service bench - %d concurrent clients -> BENCH_service.json"
       clients);
  let socket = service_socket () in
  let workload = service_workload rows in
  let config = Server.default_config ~socket_path:socket in
  let cold, warm, warm_wall, stats =
    Server.with_server config (fun server ->
        let run_one conn request expect_hit =
          let reply, seconds =
            Rar_util.Stopwatch.time (fun () ->
                Server.Client.request conn request)
          in
          (match reply with
          | Protocol.Refused m -> failwith ("service bench: refused: " ^ m)
          | Protocol.Result { cache_hit; _ } ->
            if cache_hit <> expect_hit then
              failwith
                (Printf.sprintf "service bench: cache_hit=%b, expected %b"
                   cache_hit expect_hit));
          seconds
        in
        let cold =
          let conn = Server.Client.connect ~timeout:300.0 socket in
          Fun.protect
            ~finally:(fun () -> Server.Client.close conn)
            (fun () ->
              List.map
                (fun (_, request) -> run_one conn request false)
                workload)
        in
        let warm_client () =
          let conn = Server.Client.connect ~timeout:300.0 socket in
          Fun.protect
            ~finally:(fun () -> Server.Client.close conn)
            (fun () ->
              List.concat_map
                (fun _ ->
                  List.map
                    (fun (_, request) -> run_one conn request true)
                    workload)
                (List.init rounds Fun.id))
        in
        let (per_client : float list list), warm_wall =
          Rar_util.Stopwatch.time (fun () ->
              List.map Domain.join
                (List.init clients (fun _ -> Domain.spawn warm_client)))
        in
        (cold, List.concat per_client, warm_wall, Server.stats server))
  in
  let summarize what l =
    match Rar_util.Stopwatch.summarize (Array.of_list l) with
    | Some s -> s
    | None ->
      Printf.printf "service bench: no %s samples recorded\n" what;
      exit 9
  in
  let cold_s = summarize "cold" cold and warm_s = summarize "warm" warm in
  let warm_jobs = List.length warm in
  let jobs_per_sec = float_of_int warm_jobs /. warm_wall in
  let speedup = cold_s.Rar_util.Stopwatch.mean /. warm_s.Rar_util.Stopwatch.mean in
  Printf.printf "  unique jobs: %d   warm jobs: %d (%d clients x %d rounds)\n"
    (List.length workload) warm_jobs clients rounds;
  Printf.printf "  cold: mean %.4fs  p50 %.4fs  p99 %.4fs\n"
    cold_s.Rar_util.Stopwatch.mean cold_s.Rar_util.Stopwatch.p50
    cold_s.Rar_util.Stopwatch.p99;
  Printf.printf "  warm: mean %.6fs  p50 %.6fs  p99 %.6fs\n"
    warm_s.Rar_util.Stopwatch.mean warm_s.Rar_util.Stopwatch.p50
    warm_s.Rar_util.Stopwatch.p99;
  Printf.printf "  throughput: %.0f jobs/sec   cold-vs-warm speedup: %.1fx\n"
    jobs_per_sec speedup;
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"clients\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"unique_jobs\": %d,\n\
    \  \"warm_jobs\": %d,\n\
    \  \"jobs_per_sec\": %.1f,\n\
    \  \"cold\": %s,\n\
    \  \"warm\": %s,\n\
    \  \"cold_vs_warm_speedup\": %.1f,\n\
    \  \"cache\": %s\n\
     }\n"
    clients rounds (List.length workload) warm_jobs jobs_per_sec
    (Rar_util.Stopwatch.summary_to_json cold_s)
    (Rar_util.Stopwatch.summary_to_json warm_s)
    speedup
    (match stats.Server.cache with
    | Some c -> Rar_service.Cache.to_json c
    | None -> "null");
  close_out oc;
  Printf.printf "wrote BENCH_service.json\n";
  if speedup < 5.0 then begin
    Printf.printf
      "service bench: warm repeats only %.1fx faster than cold (gate: 5x)\n"
      speedup;
    exit 9
  end

(* ------------------------------------------------------------------ *)
(* aigcheck - AIGER round-trip + windowed-resub determinism gate       *)
(* ------------------------------------------------------------------ *)

module Aig = Logic_network.Aig
module Aiger = Logic_network.Aiger

let aig_fixture name = Filename.concat (Filename.concat "bench" "fixtures") name

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let aig_check () =
  section "aigcheck - AIGER round-trips + windowed resub byte-identity";
  let failures = ref 0 in
  let expect name ok =
    if not ok then incr failures;
    Printf.printf "  %-44s %s\n" name (if ok then "ok" else "FAIL")
  in
  let fixtures =
    [ "edge_shapes.aag"; "random_small.aag"; "planted_small.aag";
      "random_medium.aag" ]
  in
  List.iter
    (fun name ->
      let s = read_whole_file (aig_fixture name) in
      let a = Aiger.parse s in
      (* write/parse is a fixpoint on the canonical form, and the
         canonical form is exactly the compacted graph. *)
      let canon = Aiger.to_string a in
      let b = Aiger.parse canon in
      expect (name ^ ": parse = compact") (Aig.equal b (Aig.compact a));
      expect (name ^ ": write/parse fixpoint")
        (String.equal (Aiger.to_string b) canon);
      (* Index lists drop names, so the round trip is structural. *)
      let il = Aig.to_index_list b in
      expect (name ^ ": index-list round trip")
        (Aig.to_index_list (Aig.of_index_list il) = il))
    fixtures;
  (* Windowed resubstitution: byte-identical across the jobs grid,
     gate count never increases, and the result simulates identically
     to the original through the Network bridge. *)
  List.iter
    (fun name ->
      let a = Aiger.parse (read_whole_file (aig_fixture name)) in
      let run jobs =
        let config = { Synth.Aig_opt.default_config with jobs } in
        Synth.Aig_opt.optimize ~config a
      in
      let opt1, stats1 = run 1 in
      let opt4, _ = run 4 in
      expect
        (Printf.sprintf "%s: jobs {1,4} byte-identical" name)
        (String.equal (Aiger.to_string opt1) (Aiger.to_string opt4));
      expect
        (Printf.sprintf "%s: gates %d -> %d monotone" name
           stats1.Synth.Aig_opt.gates_before stats1.Synth.Aig_opt.gates_after)
        (stats1.Synth.Aig_opt.gates_after <= stats1.Synth.Aig_opt.gates_before);
      expect
        (Printf.sprintf "%s: simulation equivalent" name)
        (Equiv.equivalent (Aig.to_network a) (Aig.to_network opt1)))
    [ "random_small.aag"; "planted_small.aag"; "random_medium.aag" ];
  if !failures > 0 then begin
    Printf.printf "aigcheck: %d check(s) FAILED\n" !failures;
    exit 8
  end
  else Printf.printf "aigcheck: every round-trip and resub check passed\n"

(* ------------------------------------------------------------------ *)
(* aig - windowed-resub snapshot over >=10k-gate circuits              *)
(* ------------------------------------------------------------------ *)

let aig_bench ~jobs () =
  section "aig - windowed resubstitution at real-benchmark scale";
  let circuits =
    [
      ("random_12k", Bench_suite.Generator.random_aig ~seed:3 ~n_inputs:64
         ~n_gates:12000 ());
      ("random_18k", Bench_suite.Generator.random_aig ~seed:9 ~n_inputs:96
         ~n_gates:18000 ());
      ("random_24k", Bench_suite.Generator.random_aig ~seed:17 ~n_inputs:128
         ~n_gates:24000 ());
    ]
  in
  let rows =
    List.map
      (fun (name, a) ->
        let lits_before = Lit_count.factored (Aig.to_network a) in
        let config = { Synth.Aig_opt.default_config with jobs } in
        let (opt, stats), wall =
          Rar_util.Stopwatch.time (fun () ->
              Synth.Aig_opt.optimize ~config a)
        in
        let lits_after = Lit_count.factored (Aig.to_network opt) in
        Printf.printf
          "  %-12s gates %6d -> %6d   lits %7d -> %7d   %4d/%d windows \
           accepted   %6.2fs\n"
          name stats.Synth.Aig_opt.gates_before
          stats.Synth.Aig_opt.gates_after lits_before lits_after
          stats.Synth.Aig_opt.accepted stats.Synth.Aig_opt.windows wall;
        (name, stats, lits_before, lits_after, wall))
      circuits
  in
  let oc = open_out "BENCH_aig.json" in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"circuits\": [\n" jobs;
  List.iteri
    (fun i (name, stats, lits_before, lits_after, wall) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"gates_before\": %d, \"gates_after\": %d,\n\
        \      \"lits_before\": %d, \"lits_after\": %d,\n\
        \      \"windows\": %d, \"accepted\": %d, \"wall_s\": %.3f }%s\n"
        name stats.Synth.Aig_opt.gates_before stats.Synth.Aig_opt.gates_after
        lits_before lits_after stats.Synth.Aig_opt.windows
        stats.Synth.Aig_opt.accepted wall
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_aig.json\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* key=value tokens steer the bench snapshot; plain words select
     sections. *)
  let kv key tok =
    let prefix = key ^ "=" in
    if String.starts_with ~prefix tok then
      int_of_string_opt
        (String.sub tok (String.length prefix)
           (String.length tok - String.length prefix))
    else None
  in
  let jobs =
    List.fold_left
      (fun acc tok ->
        match kv "jobs" tok with
        | Some 0 -> Rar_util.Pool.default_jobs ()
        | Some n -> max 1 n
        | None -> acc)
      1 args
  in
  let clients =
    List.fold_left
      (fun acc tok ->
        match kv "clients" tok with Some n -> max 1 n | None -> acc)
      8 args
  in
  let sim_seed =
    List.fold_left
      (fun acc tok ->
        match kv "sim-seed" tok with Some n -> Some n | None -> acc)
      None args
  in
  let sim_words =
    List.fold_left
      (fun acc tok ->
        match kv "sim-words" tok with Some n -> Some (max 1 n) | None -> acc)
      None args
  in
  let args =
    List.filter
      (fun tok ->
        kv "jobs" tok = None && kv "sim-seed" tok = None
        && kv "sim-words" tok = None && kv "clients" tok = None)
      args
  in
  let quick = List.mem "quick" args in
  let rows = if quick then Suite.quick_rows else Suite.rows in
  let explicit = List.filter (fun a -> a <> "quick") args in
  let selected name = explicit = [] || List.mem name explicit in
  if selected "fig1" then fig1 ();
  if selected "fig2" then fig2 ();
  if selected "table1" || selected "fig4" then table1_and_fig4 ();
  if selected "table2" then
    comparison_table
      ~title:"Table II - Script A (eliminate; simplify) + resubstitution"
      ~script:Synth.Script.script_a rows;
  if selected "table3" then
    comparison_table
      ~title:"Table III - Script B (Script A + gcx) + resubstitution"
      ~script:Synth.Script.script_b rows;
  if selected "table4" then
    comparison_table
      ~title:"Table IV - Script C (Script A + gkx) + resubstitution"
      ~script:Synth.Script.script_c rows;
  if selected "table5" then table_v rows;
  if selected "ablation" then ablations ();
  if selected "bech" then bechamel ();
  if List.mem "jobscheck" explicit then jobs_check rows;
  if List.mem "shardcheck" explicit then shard_check ~pinned:quick rows;
  if List.mem "tracecheck" explicit then trace_check rows;
  if List.mem "memocheck" explicit then memo_check rows;
  if List.mem "dccheck" explicit then dc_check ~pinned:quick rows;
  if List.mem "kcheck" explicit then k_check ~pinned:quick rows;
  if List.mem "cubeops" explicit then cubeops_report ();
  if List.mem "servicecheck" explicit then service_check rows;
  if List.mem "service" explicit then service_bench ~clients rows;
  if List.mem "aigcheck" explicit then aig_check ();
  if List.mem "aig" explicit then aig_bench ~jobs ();
  (* JSON snapshot only on explicit request: it is a CI artifact, not part
     of the default figure/table regeneration. *)
  if List.mem "bench" explicit then bench_json ~jobs ?sim_seed ?sim_words rows
